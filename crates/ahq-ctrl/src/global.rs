//! The global ARQ controller: nodes as regions, rounds as the clock.

use ahq_bayesopt::{OnlineTuner, WeightAxis, WeightGrid};
use ahq_cluster::{
    AppMove, ControlVerdict, Controller, NodeView, PlacementWeights, RoundObservation,
};
use ahq_sched::Blacklist;
use ahq_sim::AppKind;

use crate::config::CtrlConfig;

/// The discrete weight space the tuner searches. Each axis brackets the
/// hand-tuned default of the corresponding [`PlacementWeights`] field, so
/// the GP can both confirm the default and move away from it.
pub fn default_weight_grid() -> WeightGrid {
    WeightGrid::new(vec![
        WeightAxis::new("es", vec![0.5, 1.0, 1.5]),
        WeightAxis::new("fragility", vec![0.0, 0.25, 0.5]),
        WeightAxis::new("occupancy", vec![0.5, 1.0, 1.5]),
        WeightAxis::new("overflow", vec![1.0, 2.0, 4.0]),
    ])
}

/// A speculative move awaiting its entropy verdict: the donor node it
/// came from and the pre-move baseline (previous round's cluster-mean
/// `E_S`) it must not regress past.
#[derive(Debug, Clone, Copy)]
struct Pending {
    donor: usize,
    baseline: f64,
}

/// Cluster-level ARQ: one speculative migration per round, entropy
/// feedback, rollback with donor blacklist on regression, and optional
/// epoch-level GP weight learning. See the crate docs for the loop.
#[derive(Debug)]
pub struct GlobalArq {
    config: CtrlConfig,
    blacklist: Blacklist<usize>,
    pending: Option<Pending>,
    prev_mean: Option<f64>,
    tuner: Option<OnlineTuner>,
    epoch_means: Vec<f64>,
}

impl GlobalArq {
    /// Builds a controller; when `config.tune` is set, an [`OnlineTuner`]
    /// over [`default_weight_grid`] starts from the default placement
    /// weights so the first epoch measures the untuned baseline.
    pub fn new(config: CtrlConfig) -> Self {
        let tuner = config.tune.as_ref().map(|t| {
            OnlineTuner::new(
                &default_weight_grid(),
                PlacementWeights::default().to_vec(),
                t.seed,
            )
            .with_explore_every(t.explore_every)
        });
        GlobalArq {
            config,
            blacklist: Blacklist::new(),
            pending: None,
            prev_mean: None,
            tuner,
            epoch_means: Vec::new(),
        }
    }

    /// Donor urgency: observed interference plus LC fragility, the same
    /// signals the entropy-aware placer scores, minus the occupancy terms
    /// — a hot donor is hot regardless of how full it is.
    fn donor_score(view: &NodeView) -> f64 {
        let observed = view.recent_es.unwrap_or(0.0);
        let fragility = view.recent_ret.map_or(0.0, |ret| (1.0 - ret).max(0.0));
        observed + fragility
    }

    /// Recipient cost: observed interference plus occupancy, so the move
    /// lands on a node that is both quiet and empty.
    fn recipient_score(view: &NodeView) -> f64 {
        view.recent_es.unwrap_or(0.0) + view.occupancy_with(0)
    }

    /// Whether the node hosts an app the controller is allowed to move.
    fn migratable(&self, view: &NodeView) -> bool {
        view.be_apps > 0 || (self.config.allow_lc && view.apps > view.be_apps)
    }
}

impl Controller for GlobalArq {
    fn name(&self) -> &'static str {
        if self.tuner.is_some() {
            "global-arq+learned"
        } else {
            "global-arq"
        }
    }

    fn plan(&mut self, round: usize, views: &[NodeView]) -> Option<AppMove> {
        // No baseline yet — planning before history exists would leave
        // the rollback check with nothing to compare against.
        let baseline = self.prev_mean?;
        if round < self.config.min_history_rounds {
            return None;
        }
        let now = round as f64;

        // Donor: the hottest non-blacklisted node with something to give.
        // Strict comparisons keep the lowest index on ties, matching the
        // placer layer's determinism rule.
        let mut donor: Option<&NodeView> = None;
        for v in views {
            if v.recent_es.is_none() || self.blacklist.active(&v.index, now) {
                continue;
            }
            if !self.migratable(v) {
                continue;
            }
            if donor.is_none_or(|d| Self::donor_score(v) > Self::donor_score(d)) {
                donor = Some(v);
            }
        }
        let donor = donor?;

        // Recipient: the coolest other node. Blacklisted nodes are
        // excluded as recipients too — a node whose last adjustment blew
        // up should cool down entirely, as in node-level ARQ.
        let mut recipient: Option<&NodeView> = None;
        for v in views {
            if v.index == donor.index || self.blacklist.active(&v.index, now) {
                continue;
            }
            if recipient.is_none_or(|r| Self::recipient_score(v) < Self::recipient_score(r)) {
                recipient = Some(v);
            }
        }
        let recipient = recipient?;

        let gap = donor.recent_es.unwrap_or(0.0) - recipient.recent_es.unwrap_or(0.0);
        if gap <= self.config.hot_margin {
            return None;
        }

        // BE moves are free, so prefer them; fall back to an LC move only
        // when the donor's pressure is all latency-critical.
        let kind = if donor.be_apps > 0 {
            AppKind::Be
        } else {
            AppKind::Lc
        };
        self.pending = Some(Pending {
            donor: donor.index,
            baseline,
        });
        Some(AppMove {
            from: donor.index,
            to: recipient.index,
            kind,
        })
    }

    fn observe(&mut self, obs: &RoundObservation<'_>) -> ControlVerdict {
        let mean = obs.mean_entropy();
        let mut verdict = ControlVerdict::default();

        if let Some(pending) = self.pending.take() {
            if obs.applied.is_some() && mean > pending.baseline + self.config.regress_epsilon {
                // The speculative move made the cluster worse: restore the
                // pre-move placement and put the donor on cooldown so the
                // controller does not immediately re-propose the same bad
                // move.
                verdict.rollback = true;
                self.blacklist.protect(
                    pending.donor,
                    obs.round as f64 + self.config.cooldown_rounds,
                );
            }
        }
        self.prev_mean = Some(mean);

        if let (Some(tuner), Some(tune)) = (self.tuner.as_mut(), self.config.tune.as_ref()) {
            self.epoch_means.push(mean);
            if self.epoch_means.len() >= tune.epoch_rounds.max(1) {
                // The GP maximizes, the cluster minimizes entropy.
                let avg: f64 = self.epoch_means.iter().sum::<f64>() / self.epoch_means.len() as f64;
                let next = if tuner.epochs() < tune.freeze_after_epochs {
                    tuner.advance(-avg).to_vec()
                } else {
                    // Search budget spent: pin the incumbent and stop
                    // paying live entropy for exploration.
                    tuner
                        .best()
                        .map(|(x, _, _)| x)
                        .unwrap_or_else(|| tuner.current().to_vec())
                };
                self.epoch_means.clear();
                verdict.weights = PlacementWeights::from_slice(&next);
            }
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TuneConfig;
    use ahq_cluster::{AppliedMove, ClusterWindowStat};
    use ahq_sim::MachineConfig;

    fn view(index: usize, es: f64, be_apps: usize, lc_apps: usize) -> NodeView {
        NodeView {
            index,
            machine: MachineConfig::paper_xeon(),
            lc_threads: 2 * lc_apps as u32,
            be_threads: 2 * be_apps as u32,
            apps: be_apps + lc_apps,
            be_apps,
            recent_es: Some(es),
            recent_ret: Some(0.6),
        }
    }

    fn window(round: usize, mean_es: f64) -> ClusterWindowStat {
        ClusterWindowStat {
            window: round,
            round,
            mean_es,
            p95_es: mean_es,
            max_es: mean_es,
            violations: 0,
            active_nodes: 2,
            hifi_nodes: 2,
            lofi_nodes: 0,
            apps: 2,
            round_migrations: 0,
        }
    }

    fn applied(from: usize, to: usize) -> AppliedMove {
        AppliedMove {
            id: 7,
            name: "be-7".into(),
            from,
            to,
            kind: AppKind::Be,
            from_slot: 0,
        }
    }

    fn observe_round(ctrl: &mut GlobalArq, round: usize, mean: f64) -> ControlVerdict {
        let windows = [window(round, mean)];
        let views = [view(0, mean, 1, 1), view(1, mean, 0, 0)];
        ctrl.observe(&RoundObservation {
            round,
            windows: &windows,
            views: &views,
            applied: None,
        })
    }

    #[test]
    fn no_plan_before_history() {
        let mut ctrl = GlobalArq::new(CtrlConfig::default());
        let views = [view(0, 0.9, 2, 0), view(1, 0.1, 0, 0)];
        assert_eq!(ctrl.plan(5, &views), None, "needs a baseline first");
    }

    #[test]
    fn plans_hot_to_cool_be_move() {
        let mut ctrl = GlobalArq::new(CtrlConfig::default());
        observe_round(&mut ctrl, 0, 0.5);
        observe_round(&mut ctrl, 1, 0.5);
        let views = [view(0, 0.2, 1, 0), view(1, 0.9, 2, 1), view(2, 0.1, 0, 0)];
        let mv = ctrl.plan(2, &views).expect("gap clears the margin");
        assert_eq!(
            mv,
            AppMove {
                from: 1,
                to: 2,
                kind: AppKind::Be
            }
        );
    }

    #[test]
    fn balanced_fleet_stays_idle() {
        let mut ctrl = GlobalArq::new(CtrlConfig::default());
        observe_round(&mut ctrl, 0, 0.5);
        observe_round(&mut ctrl, 1, 0.5);
        let views = [view(0, 0.50, 1, 0), view(1, 0.52, 1, 0)];
        assert_eq!(ctrl.plan(2, &views), None, "gap below hot_margin");
    }

    #[test]
    fn lc_move_only_when_no_be_and_allowed() {
        let mut ctrl = GlobalArq::new(CtrlConfig::default());
        observe_round(&mut ctrl, 0, 0.5);
        observe_round(&mut ctrl, 1, 0.5);
        let views = [view(0, 0.9, 0, 2), view(1, 0.1, 0, 0)];
        let mv = ctrl.plan(2, &views).expect("LC fallback");
        assert_eq!(mv.kind, AppKind::Lc);

        let mut strict = GlobalArq::new(CtrlConfig {
            allow_lc: false,
            ..CtrlConfig::default()
        });
        observe_round(&mut strict, 0, 0.5);
        observe_round(&mut strict, 1, 0.5);
        assert_eq!(strict.plan(2, &views), None, "LC moves disabled");
    }

    #[test]
    fn injected_regression_rolls_back_and_blacklists_donor() {
        let mut ctrl = GlobalArq::new(CtrlConfig::default());
        observe_round(&mut ctrl, 0, 0.30);
        observe_round(&mut ctrl, 1, 0.30);

        let views = [view(0, 0.9, 2, 1), view(1, 0.1, 0, 0)];
        let mv = ctrl.plan(2, &views).expect("hot donor");
        assert_eq!(mv.from, 0);

        // Inject a regression: the round with the move in force scores far
        // above the 0.30 baseline.
        let windows = [window(2, 0.55)];
        let ap = applied(mv.from, mv.to);
        let verdict = ctrl.observe(&RoundObservation {
            round: 2,
            windows: &windows,
            views: &views,
            applied: Some(&ap),
        });
        assert!(verdict.rollback, "regression past epsilon must roll back");

        // The donor is on cooldown: the same hot views no longer yield a
        // plan from node 0...
        assert_eq!(ctrl.plan(3, &views), None, "donor blacklisted");
        // ...until cooldown_rounds have elapsed.
        let later = 2 + CtrlConfig::default().cooldown_rounds as usize + 1;
        assert!(ctrl.plan(later, &views).is_some(), "cooldown expires");
    }

    #[test]
    fn improvement_commits_without_rollback() {
        let mut ctrl = GlobalArq::new(CtrlConfig::default());
        observe_round(&mut ctrl, 0, 0.30);
        observe_round(&mut ctrl, 1, 0.30);
        let views = [view(0, 0.9, 2, 1), view(1, 0.1, 0, 0)];
        let mv = ctrl.plan(2, &views).expect("hot donor");
        let windows = [window(2, 0.22)];
        let ap = applied(mv.from, mv.to);
        let verdict = ctrl.observe(&RoundObservation {
            round: 2,
            windows: &windows,
            views: &views,
            applied: Some(&ap),
        });
        assert!(!verdict.rollback, "improved round keeps the move");
        assert!(ctrl.plan(3, &views).is_some(), "donor not blacklisted");
    }

    #[test]
    fn unapplied_plan_never_rolls_back() {
        let mut ctrl = GlobalArq::new(CtrlConfig::default());
        observe_round(&mut ctrl, 0, 0.30);
        observe_round(&mut ctrl, 1, 0.30);
        let views = [view(0, 0.9, 2, 1), view(1, 0.1, 0, 0)];
        ctrl.plan(2, &views).expect("hot donor");
        // The cluster found no matching app, so nothing was applied; even
        // a regressed round must not blame (or blacklist) the donor.
        let windows = [window(2, 0.55)];
        let verdict = ctrl.observe(&RoundObservation {
            round: 2,
            windows: &windows,
            views: &views,
            applied: None,
        });
        assert!(!verdict.rollback);
        assert!(ctrl.plan(3, &views).is_some(), "donor stays eligible");
    }

    #[test]
    fn tuner_emits_weights_each_epoch() {
        let mut ctrl = GlobalArq::new(CtrlConfig {
            tune: Some(TuneConfig {
                epoch_rounds: 3,
                ..TuneConfig::default()
            }),
            ..CtrlConfig::default()
        });
        assert_eq!(ctrl.name(), "global-arq+learned");
        let mut emitted = 0;
        for round in 0..12 {
            let verdict = observe_round(&mut ctrl, round, 0.4 + 0.01 * round as f64);
            if verdict.weights.is_some() {
                emitted += 1;
            } else {
                assert!(
                    (round + 1) % 3 != 0,
                    "epoch boundary must emit weights (round {round})"
                );
            }
        }
        assert_eq!(emitted, 4, "one weight update per 3-round epoch");
    }
}
