//! # ahq-ctrl — the hierarchical cluster-level ARQ control plane
//!
//! The paper's ARQ algorithm manages one node: it speculatively adjusts a
//! resource partition, watches the entropy feedback over a steady window,
//! and rolls the adjustment back (blacklisting the beneficiary region for
//! a cooldown) when `E_S` regresses. This crate applies the same control
//! discipline one layer up, where the "regions" are *nodes* and the
//! "partition adjustment" is an *app migration*:
//!
//! 1. **Aggregate** — each cluster round, fold the fleet's per-node
//!    `E_S` / `ReT` / occupancy summaries ([`ahq_cluster::NodeView`])
//!    into donor candidates (hot, fragile nodes) and recipient candidates
//!    (cool nodes with headroom).
//! 2. **Propose** — at most one migration per round, from the worst donor
//!    to the best recipient, only when the entropy gap clears a margin.
//!    BE moves are cheap; LC moves charge the migrated app a cold-start
//!    warm-up on the recipient, so they must earn back their cost.
//! 3. **Commit speculatively, roll back on regression** — the move runs
//!    for one round; if the cluster-mean `E_S` regresses past the
//!    pre-move baseline the controller orders a rollback (the cluster
//!    restores the exact pre-move placement) and blacklists the donor
//!    node for a cooldown, mirroring node-level ARQ's region blacklist
//!    ([`ahq_sched::Blacklist`] keyed by round instead of seconds).
//! 4. **Learn** — optionally, a GP + expected-improvement tuner
//!    ([`ahq_bayesopt::OnlineTuner`]) treats each multi-round epoch as one
//!    observation of the placement-scoring weights in force and emits the
//!    next weight vector for the cluster's tunable placer.
//!
//! The crate deliberately contains *policy only*: mechanism (executing
//! moves, restoring placements, charging warm-ups, applying weights)
//! lives in `ahq-cluster` behind the [`ahq_cluster::Controller`] trait.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod global;

pub use config::{CtrlConfig, TuneConfig};
pub use global::{default_weight_grid, GlobalArq};
