//! Controller and tuner configuration.

use serde::{Deserialize, Serialize};

/// Tuning knobs for the global controller's ARQ loop. The defaults mirror
/// the node-level ARQ constants translated to cluster time: one round is
/// the controller's clock tick the way one steady window is the node
/// scheduler's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CtrlConfig {
    /// Rounds of cluster history required before the controller may plan
    /// its first move — it needs a pre-move baseline to judge against.
    pub min_history_rounds: usize,
    /// Minimum donor-minus-recipient gap in recent mean `E_S` for a move
    /// to be worth proposing. Below this the fleet is considered balanced
    /// and the controller stays idle.
    pub hot_margin: f64,
    /// A committed move is rolled back when the round's cluster-mean
    /// `E_S` exceeds the pre-move baseline by more than this epsilon.
    pub regress_epsilon: f64,
    /// Rounds a donor node stays blacklisted after one of its moves is
    /// rolled back — the cluster analogue of node-level ARQ's 60 s region
    /// blacklist.
    pub cooldown_rounds: f64,
    /// Whether LC apps may be migrated. LC moves charge the migrated app
    /// a cold-start warm-up window on the recipient, so conservative
    /// deployments restrict the controller to BE moves.
    pub allow_lc: bool,
    /// Online weight learning for the cluster's tunable placer; `None`
    /// runs the pure ARQ migration loop with static weights.
    pub tune: Option<TuneConfig>,
}

impl Default for CtrlConfig {
    fn default() -> Self {
        CtrlConfig {
            min_history_rounds: 2,
            hot_margin: 0.05,
            regress_epsilon: 0.01,
            cooldown_rounds: 8.0,
            allow_lc: true,
            tune: None,
        }
    }
}

/// Configuration of the epoch-level GP weight tuner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneConfig {
    /// Rounds per tuning epoch: the tuner observes the mean cluster
    /// `E_S` over this many rounds as one (noisy) objective sample for
    /// the weight vector in force.
    pub epoch_rounds: usize,
    /// Seed for the tuner's expected-improvement tie-breaking.
    pub seed: u64,
    /// Explore/exploit cadence forwarded to
    /// [`ahq_bayesopt::OnlineTuner::with_explore_every`].
    pub explore_every: usize,
    /// After this many completed epochs the tuner freezes: it pins the
    /// incumbent (best mean objective) and stops exploring. An online
    /// controller pays live entropy for every exploratory epoch, so the
    /// search gets a budget and the steady state runs the winner.
    pub freeze_after_epochs: usize,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            epoch_rounds: 2,
            seed: 0xC11E,
            explore_every: 2,
            freeze_after_epochs: 5,
        }
    }
}
