//! # ahq-bayesopt — Bayesian optimization for CLITE
//!
//! The CLITE baseline in the Ah-Q paper (Patel & Tiwari, HPCA 2020) finds
//! resource partitions with Bayesian optimization: a Gaussian-process
//! surrogate over sampled allocations plus an expected-improvement
//! acquisition that picks the next allocation to try. This crate is a
//! self-contained implementation of exactly that machinery:
//!
//! * [`Matrix`] / [`cholesky`] — minimal dense linear algebra,
//! * [`RbfKernel`] — squared-exponential kernel with observation noise,
//! * [`GaussianProcess`] — exact GP regression (fit once, predict many),
//! * [`expected_improvement`] — the EI acquisition for maximization,
//! * [`BayesOpt`] — the optimize-over-candidate-set loop CLITE runs.
//!
//! The candidate set is discrete (resource allocations are integers), so
//! the optimizer scores EI over caller-provided candidates instead of
//! running a continuous inner optimization.
//!
//! ```
//! use ahq_bayesopt::{BayesOpt, RbfKernel};
//!
//! // Maximize a 1-d toy function over a discrete grid.
//! let candidates: Vec<Vec<f64>> = (0..=20).map(|i| vec![i as f64 / 20.0]).collect();
//! let f = |x: &[f64]| -(x[0] - 0.3f64).powi(2);
//! let mut opt = BayesOpt::new(RbfKernel::new(0.2, 1.0, 1e-4), 4, 99);
//! for _ in 0..12 {
//!     let x = opt.suggest(&candidates).to_vec();
//!     let y = f(&x);
//!     opt.observe(x, y);
//! }
//! let best = opt.best().unwrap();
//! assert!((best.0[0] - 0.3).abs() <= 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acquisition;
mod gp;
mod kernel;
mod linalg;
pub mod online;
mod optimizer;

pub use acquisition::{expected_improvement, normal_cdf, normal_pdf};
pub use gp::GaussianProcess;
pub use kernel::RbfKernel;
pub use linalg::{cholesky, cholesky_solve, Matrix};
pub use online::{OnlineTuner, WeightAxis, WeightGrid};
pub use optimizer::BayesOpt;
