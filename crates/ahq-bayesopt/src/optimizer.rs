use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::acquisition::expected_improvement;
use crate::gp::GaussianProcess;
use crate::kernel::RbfKernel;

/// CLITE-style Bayesian optimization over a discrete candidate set.
///
/// The loop alternates [`BayesOpt::suggest`] (pick the next configuration
/// to try) and [`BayesOpt::observe`] (report its measured objective). The
/// first `n_init` suggestions are random — the initial design — after
/// which a Gaussian process is fitted over all observations and the
/// candidate with the highest expected improvement is suggested.
/// Already-tried candidates are never suggested again while untried ones
/// remain.
///
/// The objective is **maximized**; callers encoding "satisfy LC QoS, then
/// maximize BE throughput" fold the constraint into the score exactly as
/// CLITE does (violations score poorly).
#[derive(Debug, Clone)]
pub struct BayesOpt {
    kernel: RbfKernel,
    n_init: usize,
    rng: StdRng,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
}

impl BayesOpt {
    /// Creates an optimizer with `n_init` random initial samples and a
    /// deterministic seed.
    pub fn new(kernel: RbfKernel, n_init: usize, seed: u64) -> Self {
        BayesOpt {
            kernel,
            n_init: n_init.max(1),
            rng: StdRng::seed_from_u64(seed),
            xs: Vec::new(),
            ys: Vec::new(),
        }
    }

    /// Number of observations recorded so far.
    pub fn observations(&self) -> usize {
        self.ys.len()
    }

    /// The best `(x, y)` observed so far.
    pub fn best(&self) -> Option<(&[f64], f64)> {
        self.ys
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &y)| (self.xs[i].as_slice(), y))
    }

    /// The candidate with the highest *mean* observed score, with the
    /// number of observations backing it. Repeatedly re-observing a
    /// configuration corrects the winner's-curse bias that `best` (a max)
    /// suffers under noisy objectives.
    pub fn best_by_mean(&self) -> Option<(Vec<f64>, f64, usize)> {
        let mut groups: Vec<(Vec<f64>, f64, usize)> = Vec::new();
        for (x, &y) in self.xs.iter().zip(self.ys.iter()) {
            match groups.iter_mut().find(|(gx, _, _)| gx == x) {
                Some((_, sum, n)) => {
                    *sum += y;
                    *n += 1;
                }
                None => groups.push((x.clone(), y, 1)),
            }
        }
        groups
            .into_iter()
            .map(|(x, sum, n)| (x, sum / n as f64, n))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Records an observation.
    pub fn observe(&mut self, x: Vec<f64>, y: f64) {
        if y.is_finite() {
            self.xs.push(x);
            self.ys.push(y);
        }
    }

    /// Suggests the next candidate to evaluate from `candidates`.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn suggest<'a>(&mut self, candidates: &'a [Vec<f64>]) -> &'a [f64] {
        assert!(!candidates.is_empty(), "candidate set must be non-empty");
        let untried: Vec<&Vec<f64>> = candidates
            .iter()
            .filter(|c| !self.xs.iter().any(|x| x == *c))
            .collect();
        if untried.is_empty() {
            // Everything has been tried: re-suggest the incumbent best
            // candidate (exploitation).
            return self
                .best()
                .and_then(|(bx, _)| candidates.iter().find(|c| c.as_slice() == bx))
                .unwrap_or(&candidates[0]);
        }
        if self.ys.len() < self.n_init {
            let i = self.rng.gen_range(0..untried.len());
            return untried[i];
        }
        let gp = match GaussianProcess::fit(self.kernel, self.xs.clone(), self.ys.clone()) {
            Some(gp) => gp,
            None => {
                let i = self.rng.gen_range(0..untried.len());
                return untried[i];
            }
        };
        let best_y = self.best().map(|(_, y)| y).unwrap_or(0.0);
        untried
            .into_iter()
            .max_by(|a, b| {
                let (ma, va) = gp.predict(a);
                let (mb, vb) = gp.predict(b);
                expected_improvement(ma, va, best_y)
                    .total_cmp(&expected_improvement(mb, vb, best_y))
            })
            .expect("untried is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<Vec<f64>> {
        (0..=20).map(|i| vec![i as f64 / 20.0]).collect()
    }

    #[test]
    fn finds_the_peak_of_a_smooth_function() {
        let f = |x: &[f64]| 1.0 - (x[0] - 0.65f64).powi(2) * 4.0;
        let mut opt = BayesOpt::new(RbfKernel::new(0.15, 1.0, 1e-6), 5, 42);
        for _ in 0..14 {
            let x = opt.suggest(&grid()).to_vec();
            let y = f(&x);
            opt.observe(x, y);
        }
        let (bx, _) = opt.best().unwrap();
        assert!(
            (bx[0] - 0.65).abs() <= 0.1,
            "best {bx:?} should be near the 0.65 peak"
        );
    }

    #[test]
    fn never_resuggests_tried_points_while_untried_remain() {
        let mut opt = BayesOpt::new(RbfKernel::new(0.2, 1.0, 1e-6), 3, 7);
        let candidates = grid();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..candidates.len() {
            let x = opt.suggest(&candidates).to_vec();
            assert!(
                seen.insert(format!("{x:?}")),
                "{x:?} suggested twice before exhaustion"
            );
            opt.observe(x, 0.5);
        }
    }

    #[test]
    fn exhausted_candidates_resuggest_best() {
        let candidates: Vec<Vec<f64>> = vec![vec![0.0], vec![1.0]];
        let mut opt = BayesOpt::new(RbfKernel::new(0.2, 1.0, 1e-6), 1, 7);
        opt.observe(vec![0.0], 0.1);
        opt.observe(vec![1.0], 0.9);
        let s = opt.suggest(&candidates);
        assert_eq!(s, &[1.0][..]);
    }

    #[test]
    fn non_finite_observations_are_dropped() {
        let mut opt = BayesOpt::new(RbfKernel::new(0.2, 1.0, 1e-6), 1, 7);
        opt.observe(vec![0.5], f64::NAN);
        assert_eq!(opt.observations(), 0);
        assert!(opt.best().is_none());
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = |seed| {
            let mut opt = BayesOpt::new(RbfKernel::new(0.2, 1.0, 1e-6), 4, seed);
            let mut path = Vec::new();
            for _ in 0..8 {
                let x = opt.suggest(&grid()).to_vec();
                path.push(x[0]);
                opt.observe(x, 0.3);
            }
            path
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_candidates_panic() {
        BayesOpt::new(RbfKernel::new(0.2, 1.0, 1e-6), 1, 1).suggest(&[]);
    }
}
