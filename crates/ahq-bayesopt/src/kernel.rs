/// The squared-exponential (RBF) covariance kernel with observation noise:
///
/// ```text
/// k(x, x') = variance * exp(-|x - x'|² / (2 * lengthscale²))
/// ```
///
/// plus `noise` added on the diagonal of the training covariance. This is
/// the kernel CLITE's Bayesian optimizer uses over normalized resource
/// allocations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbfKernel {
    lengthscale: f64,
    variance: f64,
    noise: f64,
}

impl RbfKernel {
    /// Creates a kernel. Inputs are clamped to small positive floors so
    /// the kernel is always positive definite.
    pub fn new(lengthscale: f64, variance: f64, noise: f64) -> Self {
        RbfKernel {
            lengthscale: if lengthscale.is_finite() {
                lengthscale.max(1e-6)
            } else {
                1.0
            },
            variance: if variance.is_finite() {
                variance.max(1e-12)
            } else {
                1.0
            },
            noise: if noise.is_finite() {
                noise.max(1e-10)
            } else {
                1e-6
            },
        }
    }

    /// The covariance between two points.
    ///
    /// # Panics
    ///
    /// Panics if the points have different dimensionality.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "points must share dimensionality");
        let d2: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y).powi(2)).sum();
        self.variance * (-d2 / (2.0 * self.lengthscale * self.lengthscale)).exp()
    }

    /// The observation-noise variance added to the training diagonal.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// The signal variance (prior variance far from all data).
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// The lengthscale.
    pub fn lengthscale(&self) -> f64 {
        self.lengthscale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_covariance_is_variance() {
        let k = RbfKernel::new(0.5, 2.0, 1e-6);
        assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_decays_with_distance() {
        let k = RbfKernel::new(0.5, 1.0, 1e-6);
        let near = k.eval(&[0.0], &[0.1]);
        let far = k.eval(&[0.0], &[1.0]);
        assert!(near > far);
        assert!(far > 0.0);
        assert!((k.eval(&[0.0], &[0.5]) - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let k = RbfKernel::new(0.3, 1.5, 1e-6);
        assert_eq!(
            k.eval(&[0.2, 0.9], &[0.7, 0.1]),
            k.eval(&[0.7, 0.1], &[0.2, 0.9])
        );
    }

    #[test]
    fn degenerate_params_are_clamped() {
        let k = RbfKernel::new(0.0, -1.0, f64::NAN);
        assert!(k.lengthscale() > 0.0);
        assert!(k.variance() > 0.0);
        assert!(k.noise() > 0.0);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn dimension_mismatch_panics() {
        RbfKernel::new(1.0, 1.0, 1e-6).eval(&[1.0], &[1.0, 2.0]);
    }
}
