//! Online coefficient tuning across control epochs.
//!
//! CLITE runs its GP + expected-improvement loop per node over resource
//! partitions. The cluster controller (`ahq-ctrl`) reuses the same
//! machinery one layer up: the thing being optimized is a small vector of
//! scoring coefficients (1–4 dimensions, e.g. the `EntropyAware`
//! placement weights) and one "evaluation" is a whole control epoch of
//! the live system. [`OnlineTuner`] wraps [`BayesOpt`] for that setting:
//! it always has a *current* weight vector in force, alternates
//! exploration (EI suggestion) with exploitation (incumbent-by-mean) so
//! the online regret of trying bad weights stays bounded, and corrects
//! noisy objectives by re-observing the incumbent.

use crate::kernel::RbfKernel;
use crate::optimizer::BayesOpt;

/// One tunable coefficient: a name and the discrete values it may take.
#[derive(Debug, Clone)]
pub struct WeightAxis {
    /// Coefficient name (used in reports).
    pub name: &'static str,
    /// Candidate values, in ascending order.
    pub values: Vec<f64>,
}

impl WeightAxis {
    /// A named axis over the given candidate values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn new(name: &'static str, values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "axis {name} needs at least one value");
        WeightAxis { name, values }
    }
}

/// A 1–4 dimensional discrete weight space: the cartesian product of its
/// axes is the candidate set handed to the GP.
#[derive(Debug, Clone)]
pub struct WeightGrid {
    axes: Vec<WeightAxis>,
}

impl WeightGrid {
    /// Builds a grid from 1 to 4 axes.
    ///
    /// # Panics
    ///
    /// Panics when given zero or more than four axes — a GP over an exact
    /// cartesian product stops being a sensible online optimizer beyond a
    /// handful of dimensions.
    pub fn new(axes: Vec<WeightAxis>) -> Self {
        assert!(
            (1..=4).contains(&axes.len()),
            "WeightGrid supports 1-4 axes, got {}",
            axes.len()
        );
        WeightGrid { axes }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.axes.len()
    }

    /// The axes, in declaration order.
    pub fn axes(&self) -> &[WeightAxis] {
        &self.axes
    }

    /// The full cartesian product of the axes' values.
    pub fn candidates(&self) -> Vec<Vec<f64>> {
        let mut out: Vec<Vec<f64>> = vec![Vec::new()];
        for axis in &self.axes {
            let mut next = Vec::with_capacity(out.len() * axis.values.len());
            for prefix in &out {
                for &v in &axis.values {
                    let mut c = prefix.clone();
                    c.push(v);
                    next.push(c);
                }
            }
            out = next;
        }
        out
    }

    /// A kernel length scale proportional to the mean axis span, so the GP
    /// generalizes across neighbouring weight values without the caller
    /// hand-tuning hyperparameters per grid.
    fn length_scale(&self) -> f64 {
        let span: f64 = self
            .axes
            .iter()
            .map(|a| {
                let lo = a.values.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = a.values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                hi - lo
            })
            .sum::<f64>()
            / self.axes.len() as f64;
        (0.4 * span).max(1e-3)
    }
}

/// Epoch-by-epoch weight optimization: keep a current vector in force,
/// observe one objective value per epoch, and move to the next vector.
///
/// The schedule alternates *exploration* (the GP's expected-improvement
/// suggestion) with *exploitation* (the incumbent with the best mean
/// observed objective): an online controller pays for every bad epoch it
/// runs, so pure exploration is too expensive, while pure exploitation
/// never learns. Exploitation epochs double as re-observations of the
/// incumbent, which is what makes [`BayesOpt::best_by_mean`] robust to
/// objective noise.
#[derive(Debug, Clone)]
pub struct OnlineTuner {
    opt: BayesOpt,
    candidates: Vec<Vec<f64>>,
    current: Vec<f64>,
    explore_every: usize,
    epoch: usize,
}

impl OnlineTuner {
    /// Creates a tuner over `grid`, starting from `start` (typically the
    /// hand-tuned defaults; it is added to the candidate set if missing so
    /// the baseline is always part of the comparison), with a
    /// deterministic seed.
    pub fn new(grid: &WeightGrid, start: Vec<f64>, seed: u64) -> Self {
        assert_eq!(
            start.len(),
            grid.dims(),
            "start vector must match the grid dimensionality"
        );
        let mut candidates = grid.candidates();
        if !candidates.iter().any(|c| c == &start) {
            candidates.push(start.clone());
        }
        let kernel = RbfKernel::new(grid.length_scale(), 1.0, 1e-4);
        OnlineTuner {
            opt: BayesOpt::new(kernel, 2, seed),
            candidates,
            current: start,
            explore_every: 2,
            epoch: 0,
        }
    }

    /// How often an exploration epoch runs (default 2: alternate
    /// explore / exploit). `1` explores every epoch; larger values spend
    /// more epochs on the incumbent.
    pub fn with_explore_every(mut self, explore_every: usize) -> Self {
        self.explore_every = explore_every.max(1);
        self
    }

    /// The weight vector currently in force.
    pub fn current(&self) -> &[f64] {
        &self.current
    }

    /// Number of completed epochs (observations recorded).
    pub fn epochs(&self) -> usize {
        self.epoch
    }

    /// Ends the current epoch: records `objective` (maximized) for the
    /// weights in force and returns the vector for the next epoch.
    pub fn advance(&mut self, objective: f64) -> &[f64] {
        self.opt.observe(self.current.clone(), objective);
        let explore = self.epoch.is_multiple_of(self.explore_every);
        self.epoch += 1;
        self.current = if explore {
            self.opt.suggest(&self.candidates).to_vec()
        } else {
            self.opt
                .best_by_mean()
                .map(|(x, _, _)| x)
                .unwrap_or_else(|| self.current.clone())
        };
        &self.current
    }

    /// The incumbent: highest mean observed objective, with its mean and
    /// the number of epochs backing it.
    pub fn best(&self) -> Option<(Vec<f64>, f64, usize)> {
        self.opt.best_by_mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid2() -> WeightGrid {
        WeightGrid::new(vec![
            WeightAxis::new("a", vec![0.0, 0.5, 1.0]),
            WeightAxis::new("b", vec![1.0, 2.0]),
        ])
    }

    #[test]
    fn candidates_are_the_cartesian_product() {
        let c = grid2().candidates();
        assert_eq!(c.len(), 6);
        assert!(c.contains(&vec![0.5, 2.0]));
        assert!(c.contains(&vec![1.0, 1.0]));
    }

    #[test]
    #[should_panic(expected = "1-4 axes")]
    fn five_axes_are_rejected() {
        WeightGrid::new(vec![
            WeightAxis::new("a", vec![0.0]),
            WeightAxis::new("b", vec![0.0]),
            WeightAxis::new("c", vec![0.0]),
            WeightAxis::new("d", vec![0.0]),
            WeightAxis::new("e", vec![0.0]),
        ]);
    }

    #[test]
    fn start_vector_joins_the_candidate_set() {
        let grid = WeightGrid::new(vec![WeightAxis::new("a", vec![0.0, 1.0])]);
        let mut tuner = OnlineTuner::new(&grid, vec![0.25], 3);
        // Exhaust the space: the off-grid start must be suggestible, i.e.
        // part of the candidate set the optimizer cycles through.
        let mut seen = std::collections::HashSet::new();
        seen.insert(format!("{:?}", tuner.current().to_vec()));
        for _ in 0..3 {
            let next = tuner.advance(0.0).to_vec();
            seen.insert(format!("{next:?}"));
        }
        assert!(seen.contains("[0.25]"), "start stays in the rotation");
    }

    #[test]
    fn converges_to_the_best_weight_on_a_clean_objective() {
        let grid = WeightGrid::new(vec![WeightAxis::new("w", vec![0.0, 0.5, 1.0, 1.5, 2.0])]);
        let mut tuner = OnlineTuner::new(&grid, vec![1.0], 17);
        let f = |x: &[f64]| -(x[0] - 1.5f64).powi(2);
        for _ in 0..12 {
            let y = f(tuner.current());
            tuner.advance(y);
        }
        let (bx, _, _) = tuner.best().expect("observations exist");
        assert_eq!(bx, vec![1.5]);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = || {
            let grid = grid2();
            let mut tuner = OnlineTuner::new(&grid, vec![0.5, 1.0], 11);
            let mut path = Vec::new();
            for i in 0..8 {
                path.push(tuner.advance(i as f64 * 0.1).to_vec());
            }
            path
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn exploitation_revisits_the_incumbent() {
        let grid = WeightGrid::new(vec![WeightAxis::new("w", vec![0.0, 1.0, 2.0])]);
        // explore_every = 2: epoch 0 explores, epoch 1 exploits.
        let mut tuner = OnlineTuner::new(&grid, vec![1.0], 5);
        tuner.advance(3.0); // observe start=1.0 at 3.0 (incumbent)
        let exploit = tuner.advance(-1.0).to_vec();
        // Whatever epoch 0 suggested scored -1.0; the mean-best is the
        // start vector, and the exploitation epoch must return to it...
        // unless exploration happened to re-suggest the incumbent itself,
        // in which case its mean dropped and another candidate may lead.
        let (bx, _, _) = tuner.best().unwrap();
        assert_eq!(exploit, bx, "exploit epoch runs the mean-best incumbent");
    }
}
