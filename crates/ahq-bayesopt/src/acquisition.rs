//! The expected-improvement acquisition function (for maximization) and
//! the standard-normal helpers it needs.

/// The standard normal probability density.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// The standard normal cumulative distribution, via the Abramowitz &
/// Stegun 7.1.26 `erf` approximation (max absolute error ≈ 1.5e-7, ample
/// for acquisition ranking).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - ((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Expected improvement of a Gaussian posterior `(mean, variance)` over
/// the incumbent best observed value, for **maximization**:
///
/// ```text
/// EI = (mean - best) * Φ(z) + σ * φ(z),   z = (mean - best) / σ
/// ```
///
/// With zero variance, EI degenerates to `max(0, mean - best)`. The
/// result is clamped at zero: EI is analytically non-negative, but the
/// erf approximation's ~1.5e-7 error can otherwise surface as a tiny
/// negative value deep in the left tail.
pub fn expected_improvement(mean: f64, variance: f64, best: f64) -> f64 {
    let sigma = variance.max(0.0).sqrt();
    let delta = mean - best;
    if sigma < 1e-12 {
        return delta.max(0.0);
    }
    let z = delta / sigma;
    (delta * normal_cdf(z) + sigma * normal_pdf(z)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_helpers_match_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!((normal_pdf(0.0) - 0.39894228).abs() < 1e-7);
        assert!(normal_pdf(5.0) < 1e-5);
    }

    #[test]
    fn ei_is_nonnegative_and_monotone_in_mean() {
        let base = expected_improvement(0.0, 1.0, 0.5);
        let better = expected_improvement(0.4, 1.0, 0.5);
        assert!(base >= 0.0);
        assert!(better > base);
    }

    #[test]
    fn ei_rewards_uncertainty_below_incumbent() {
        // Mean below the incumbent: only variance can produce improvement.
        let no_var = expected_improvement(0.0, 0.0, 1.0);
        let some_var = expected_improvement(0.0, 4.0, 1.0);
        assert_eq!(no_var, 0.0);
        assert!(some_var > 0.0);
    }

    #[test]
    fn ei_zero_variance_is_relu() {
        assert_eq!(expected_improvement(2.0, 0.0, 1.5), 0.5);
        assert_eq!(expected_improvement(1.0, 0.0, 1.5), 0.0);
    }

    #[test]
    fn ei_grows_with_variance() {
        let lo = expected_improvement(1.0, 0.01, 1.0);
        let hi = expected_improvement(1.0, 1.0, 1.0);
        assert!(hi > lo);
    }
}
