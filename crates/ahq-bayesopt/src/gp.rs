use crate::kernel::RbfKernel;
use crate::linalg::{cholesky, cholesky_solve, forward_solve, Matrix};

/// Exact Gaussian-process regression with an [`RbfKernel`].
///
/// Fit once over `(X, y)`, then query the posterior mean and variance at
/// arbitrary points. Targets are internally centred on their mean so the
/// zero-mean GP prior behaves sensibly for performance scores that live
/// far from zero.
///
/// ```
/// use ahq_bayesopt::{GaussianProcess, RbfKernel};
///
/// let xs = vec![vec![0.0], vec![0.5], vec![1.0]];
/// let ys = vec![0.0, 1.0, 0.0];
/// let gp = GaussianProcess::fit(RbfKernel::new(0.3, 1.0, 1e-6), xs, ys).unwrap();
/// let (mean, var) = gp.predict(&[0.5]);
/// assert!((mean - 1.0).abs() < 1e-3); // interpolates the data
/// assert!(var < 1e-3);                // and is confident there
/// ```
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: RbfKernel,
    xs: Vec<Vec<f64>>,
    y_mean: f64,
    chol: Matrix,
    alpha: Vec<f64>,
}

impl GaussianProcess {
    /// Fits the GP. Returns `None` when the kernel matrix is not positive
    /// definite even after the kernel's noise jitter (e.g. duplicated
    /// points with contradictory targets and zero noise), or when inputs
    /// are empty/mismatched.
    pub fn fit(kernel: RbfKernel, xs: Vec<Vec<f64>>, ys: Vec<f64>) -> Option<Self> {
        if xs.is_empty() || xs.len() != ys.len() {
            return None;
        }
        let dim = xs[0].len();
        if xs.iter().any(|x| x.len() != dim) {
            return None;
        }
        let n = xs.len();
        let y_mean = ys.iter().sum::<f64>() / n as f64;
        let centred: Vec<f64> = ys.iter().map(|y| y - y_mean).collect();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut v = kernel.eval(&xs[i], &xs[j]);
                if i == j {
                    v += kernel.noise();
                }
                k.set(i, j, v);
            }
        }
        let chol = cholesky(&k)?;
        let alpha = cholesky_solve(&chol, &centred);
        Some(GaussianProcess {
            kernel,
            xs,
            y_mean,
            chol,
            alpha,
        })
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the GP holds no training data (never true for a fitted GP).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Posterior `(mean, variance)` at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let kstar: Vec<f64> = self.xs.iter().map(|xi| self.kernel.eval(xi, x)).collect();
        let mean = self.y_mean
            + kstar
                .iter()
                .zip(self.alpha.iter())
                .map(|(k, a)| k * a)
                .sum::<f64>();
        let v = forward_solve(&self.chol, &kstar);
        let var = self.kernel.eval(x, x) - v.iter().map(|vi| vi * vi).sum::<f64>();
        (mean, var.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_training_points() {
        let xs = vec![vec![0.0], vec![0.3], vec![0.7], vec![1.0]];
        let ys = vec![1.0, 2.0, 0.5, -1.0];
        let gp =
            GaussianProcess::fit(RbfKernel::new(0.25, 1.0, 1e-8), xs.clone(), ys.clone()).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            let (m, v) = gp.predict(x);
            assert!((m - y).abs() < 1e-3, "mean {m} vs target {y}");
            assert!(v < 1e-4, "variance {v} at a training point");
        }
    }

    #[test]
    fn reverts_to_prior_far_from_data() {
        let gp = GaussianProcess::fit(RbfKernel::new(0.1, 2.0, 1e-8), vec![vec![0.0]], vec![5.0])
            .unwrap();
        let (m, v) = gp.predict(&[100.0]);
        assert!((m - 5.0).abs() < 1e-9, "prior mean is the data mean");
        assert!(
            (v - 2.0).abs() < 1e-9,
            "prior variance is the signal variance"
        );
    }

    #[test]
    fn variance_grows_with_distance_from_data() {
        let gp = GaussianProcess::fit(RbfKernel::new(0.3, 1.0, 1e-6), vec![vec![0.5]], vec![0.0])
            .unwrap();
        let (_, v_near) = gp.predict(&[0.55]);
        let (_, v_far) = gp.predict(&[2.0]);
        assert!(v_far > v_near);
    }

    #[test]
    fn rejects_bad_inputs() {
        let k = RbfKernel::new(0.3, 1.0, 1e-6);
        assert!(GaussianProcess::fit(k, vec![], vec![]).is_none());
        assert!(GaussianProcess::fit(k, vec![vec![1.0]], vec![1.0, 2.0]).is_none());
        assert!(GaussianProcess::fit(k, vec![vec![1.0], vec![1.0, 2.0]], vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn multidimensional_inputs_work() {
        let xs = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]];
        let ys = vec![0.0, 1.0, 2.0];
        let gp = GaussianProcess::fit(RbfKernel::new(0.8, 1.0, 1e-6), xs, ys).unwrap();
        let (m, _) = gp.predict(&[0.0, 1.0]);
        assert!((m - 2.0).abs() < 0.2);
        assert_eq!(gp.len(), 3);
        assert!(!gp.is_empty());
    }
}
