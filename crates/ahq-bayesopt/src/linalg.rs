//! Minimal dense linear algebra: a row-major matrix, Cholesky
//! factorization and triangular solves — everything exact GP regression
//! needs, nothing more.

use std::fmt;

/// A dense, row-major `rows x cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a nested row representation.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|row| row.len() == c),
            "all rows must have equal length"
        );
        Matrix {
            rows: r,
            cols: c,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>10.4} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Computes the lower-triangular Cholesky factor `L` of a symmetric
/// positive-definite matrix `A = L Lᵀ`.
///
/// Returns `None` when the matrix is not positive definite (within a tiny
/// jitter tolerance) or not square.
pub fn cholesky(a: &Matrix) -> Option<Matrix> {
    if a.rows() != a.cols() {
        return None;
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Some(l)
}

/// Solves `A x = b` given the Cholesky factor `L` of `A` (forward then
/// backward substitution).
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(l.cols(), n, "factor must be square");
    assert_eq!(b.len(), n, "rhs length must match");
    // Forward: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for (k, &yk) in y.iter().enumerate().take(i) {
            sum -= l.get(i, k) * yk;
        }
        y[i] = sum / l.get(i, i);
    }
    // Backward: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for (k, &xk) in x.iter().enumerate().take(n).skip(i + 1) {
            sum -= l.get(k, i) * xk;
        }
        x[i] = sum / l.get(i, i);
    }
    x
}

/// Solves the triangular system `L v = b` (forward substitution only) —
/// used for GP predictive variance.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn forward_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(b.len(), n, "rhs length must match");
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for (k, &yk) in y.iter().enumerate().take(i) {
            sum -= l.get(i, k) * yk;
        }
        y[i] = sum / l.get(i, i);
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_of_known_matrix() {
        // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]].
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let l = cholesky(&a).unwrap();
        assert!((l.get(0, 0) - 2.0).abs() < 1e-12);
        assert!((l.get(1, 0) - 1.0).abs() < 1e-12);
        assert!((l.get(1, 1) - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(l.get(0, 1), 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(cholesky(&a).is_none());
        let bad = Matrix::zeros(2, 3);
        assert!(cholesky(&bad).is_none());
    }

    #[test]
    fn solve_round_trips() {
        let a = Matrix::from_rows(&[
            vec![6.0, 2.0, 1.0],
            vec![2.0, 5.0, 2.0],
            vec![1.0, 2.0, 4.0],
        ]);
        let l = cholesky(&a).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        // b = A x.
        let mut b = [0.0; 3];
        for (i, bi) in b.iter_mut().enumerate() {
            for (j, xj) in x_true.iter().enumerate() {
                *bi += a.get(i, j) * xj;
            }
        }
        let x = cholesky_solve(&l, &b);
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn forward_solve_matches_factor() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let l = cholesky(&a).unwrap();
        let v = forward_solve(&l, &[2.0, 1.0]);
        // L v = b -> v0 = 1, v1 = (1 - 1*1)/sqrt(2) = 0.
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!(v[1].abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::zeros(1, 1);
        assert!(a.to_string().contains("0.0000"));
    }
}
