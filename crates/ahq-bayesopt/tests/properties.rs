//! Property-based tests of the Gaussian-process machinery: positive
//! definiteness, interpolation, and acquisition sanity for arbitrary
//! training data.

use ahq_bayesopt::{
    cholesky, cholesky_solve, expected_improvement, GaussianProcess, Matrix, RbfKernel,
};
use proptest::prelude::*;

fn training_data() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    prop::collection::vec((prop::array::uniform3(0.0f64..1.0), -5.0f64..5.0), 2..12).prop_map(
        |pairs| {
            // Drop near-duplicate points: two samples closer than the
            // noise floor with different targets make exact interpolation
            // ill-conditioned by construction (the GP rightly averages
            // them), which is not the property under test.
            let mut xs: Vec<Vec<f64>> = Vec::new();
            let mut ys = Vec::new();
            for (x, y) in pairs {
                let x = x.to_vec();
                let far_enough = xs.iter().all(|seen: &Vec<f64>| {
                    let d2: f64 = seen
                        .iter()
                        .zip(x.iter())
                        .map(|(a, b)| (a - b).powi(2))
                        .sum();
                    d2.sqrt() > 0.05
                });
                if far_enough {
                    xs.push(x);
                    ys.push(y);
                }
            }
            (xs, ys)
        },
    )
}

proptest! {
    /// The RBF kernel matrix (plus noise) is always positive definite:
    /// Cholesky succeeds and the factor reconstructs the matrix.
    #[test]
    fn kernel_matrices_are_positive_definite((xs, _ys) in training_data()) {
        let kernel = RbfKernel::new(0.4, 1.0, 1e-4);
        let n = xs.len();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut v = kernel.eval(&xs[i], &xs[j]);
                if i == j {
                    v += kernel.noise();
                }
                k.set(i, j, v);
            }
        }
        let l = cholesky(&k);
        prop_assert!(l.is_some(), "kernel matrix must be PD");
        let l = l.unwrap();
        // Check L Lᵀ == K on a few entries.
        for i in 0..n {
            for j in 0..=i {
                let mut v = 0.0;
                for t in 0..n {
                    v += l.get(i, t) * l.get(j, t);
                }
                prop_assert!((v - k.get(i, j)).abs() < 1e-8);
            }
        }
    }

    /// Cholesky solve inverts the system it was built from.
    #[test]
    fn solve_round_trips((xs, ys) in training_data()) {
        let kernel = RbfKernel::new(0.4, 1.0, 1e-4);
        let n = xs.len();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut v = kernel.eval(&xs[i], &xs[j]);
                if i == j {
                    v += kernel.noise();
                }
                k.set(i, j, v);
            }
        }
        let l = cholesky(&k).expect("PD");
        let x = cholesky_solve(&l, &ys);
        // K x ≈ ys.
        for (i, yi) in ys.iter().enumerate() {
            let mut v = 0.0;
            for (j, xj) in x.iter().enumerate() {
                v += k.get(i, j) * xj;
            }
            prop_assert!((v - yi).abs() < 1e-6, "row {i}: {v} vs {yi}");
        }
    }

    /// A fitted GP interpolates its training targets (within the noise
    /// floor) and never reports negative variance anywhere.
    #[test]
    fn gp_interpolates_and_variance_nonnegative(
        (xs, ys) in training_data(),
        probe in prop::array::uniform3(-0.5f64..1.5),
    ) {
        let gp = GaussianProcess::fit(RbfKernel::new(0.4, 1.0, 1e-6), xs.clone(), ys.clone())
            .expect("PD fit");
        for (x, y) in xs.iter().zip(ys.iter()) {
            let (m, v) = gp.predict(x);
            prop_assert!((m - y).abs() < 0.05, "mean {m} vs target {y}");
            prop_assert!(v >= 0.0);
        }
        let (_, v) = gp.predict(&probe);
        prop_assert!(v >= 0.0 && v.is_finite());
    }

    /// Expected improvement is non-negative, and zero only when there is
    /// provably nothing to gain.
    #[test]
    fn ei_is_nonnegative(mean in -5.0f64..5.0, var in 0.0f64..4.0, best in -5.0f64..5.0) {
        let ei = expected_improvement(mean, var, best);
        prop_assert!(ei >= 0.0);
        prop_assert!(ei.is_finite());
        if var == 0.0 {
            prop_assert!((ei - (mean - best).max(0.0)).abs() < 1e-12);
        }
    }
}
