//! Cross-crate integration tests for the persistent tier-2 run cache:
//! training warm-starts across *processes* (modelled here as fresh
//! engines over a shared cache directory) must be byte-identical to
//! cold runs, robust to corrupted shards, and independent of the
//! worker count writing the shards.

use std::path::{Path, PathBuf};

use ahq_experiments::train::run_search;
use ahq_experiments::{DiskCache, ExpConfig, ExpContext};

fn train_ctx(jobs: usize) -> ExpContext {
    let mut cfg = ExpContext::with_jobs(
        ExpConfig {
            quick: true,
            seed: 42,
        },
        jobs,
    );
    cfg.train.population = Some(4);
    cfg.train.generations = Some(2);
    cfg
}

fn train_ctx_with_cache(jobs: usize, dir: &Path) -> ExpContext {
    let mut cfg = train_ctx(jobs);
    let disk = DiskCache::open(dir, None).expect("cache dir must open");
    cfg.engine_mut().set_disk_cache(disk);
    cfg
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ahq-cache-integration-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every shard file currently in the cache directory.
fn shards(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap().flatten() {
        if entry.path().is_dir() {
            for shard in std::fs::read_dir(entry.path()).unwrap().flatten() {
                if shard.path().extension().is_some_and(|e| e == "json") {
                    out.push(shard.path());
                }
            }
        }
    }
    out.sort();
    out
}

#[test]
fn warm_start_is_byte_identical_and_answered_from_disk() {
    let dir = fresh_dir("warm");

    // The reference: the same search with no disk cache at all.
    let uncached = run_search(&train_ctx(4)).artifact.to_json_string();

    // Cold run: populates the shared directory, every probe misses.
    let cold_cfg = train_ctx_with_cache(4, &dir);
    let cold = run_search(&cold_cfg).artifact.to_json_string();
    let cold_stats = cold_cfg.engine().disk_stats().unwrap();
    assert_eq!(cold.len(), uncached.len());
    assert_eq!(cold, uncached, "attaching a cache must not change output");
    assert_eq!(cold_stats.hits, 0, "an empty cache cannot hit");
    assert!(cold_stats.misses > 0 && cold_stats.bytes_written > 0);
    assert!(!shards(&dir).is_empty(), "cold run must persist shards");

    // Warm run: a fresh engine (fresh tier 1) over the same directory
    // answers every unique job from disk and re-executes nothing.
    let warm_cfg = train_ctx_with_cache(8, &dir);
    let warm = run_search(&warm_cfg).artifact.to_json_string();
    let warm_stats = warm_cfg.engine().disk_stats().unwrap();
    assert_eq!(warm, cold, "warm-start output must match the cold run");
    assert!(warm_stats.hits > 0, "warm run never touched the disk tier");
    assert_eq!(warm_stats.misses, 0, "warm run re-executed a cached job");
    assert_eq!(warm_stats.bytes_written, 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_shards_degrade_to_misses_not_wrong_results() {
    let dir = fresh_dir("corrupt");
    let cold = run_search(&train_ctx_with_cache(2, &dir))
        .artifact
        .to_json_string();

    // Vandalize a few shards three different ways: truncation, garbage
    // bytes, and an empty file.
    let victims = shards(&dir);
    assert!(victims.len() >= 3, "need a few shards to corrupt");
    let text = std::fs::read_to_string(&victims[0]).unwrap();
    std::fs::write(&victims[0], &text[..text.len() / 2]).unwrap();
    std::fs::write(&victims[1], b"{not json").unwrap();
    std::fs::write(&victims[2], b"").unwrap();

    let warm_cfg = train_ctx_with_cache(2, &dir);
    let warm = run_search(&warm_cfg).artifact.to_json_string();
    let stats = warm_cfg.engine().disk_stats().unwrap();
    assert_eq!(warm, cold, "corruption must never change results");
    assert_eq!(stats.misses, 3, "each corrupt shard re-executes once");
    assert!(stats.hits > 0, "intact shards still hit");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_count_never_leaks_into_the_cache_or_the_artifact() {
    let dir1 = fresh_dir("jobs1");
    let dir8 = fresh_dir("jobs8");

    // Cold at jobs=1 and jobs=8 into separate directories: identical
    // artifacts and identical shard sets (same file names, same bytes).
    let a = run_search(&train_ctx_with_cache(1, &dir1))
        .artifact
        .to_json_string();
    let b = run_search(&train_ctx_with_cache(8, &dir8))
        .artifact
        .to_json_string();
    assert_eq!(a, b, "artifact must be byte-identical for any --jobs");

    let s1 = shards(&dir1);
    let s8 = shards(&dir8);
    let names = |v: &[PathBuf]| -> Vec<String> {
        v.iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect()
    };
    assert_eq!(names(&s1), names(&s8), "same content-addressed shard set");
    for (p1, p8) in s1.iter().zip(&s8) {
        assert_eq!(
            std::fs::read(p1).unwrap(),
            std::fs::read(p8).unwrap(),
            "shard bytes must not depend on the worker count"
        );
    }

    // Cross-warm: jobs=8 warm-started from the jobs=1 directory.
    let cross_cfg = train_ctx_with_cache(8, &dir1);
    let cross = run_search(&cross_cfg).artifact.to_json_string();
    assert_eq!(cross, a);
    assert_eq!(cross_cfg.engine().disk_stats().unwrap().misses, 0);

    std::fs::remove_dir_all(&dir1).ok();
    std::fs::remove_dir_all(&dir8).ok();
}

#[test]
fn byte_budget_is_enforced_across_runs() {
    let dir = fresh_dir("budget");
    let cold_cfg = train_ctx_with_cache(4, &dir);
    run_search(&cold_cfg);
    let full_size: u64 = shards(&dir)
        .iter()
        .map(|p| std::fs::metadata(p).unwrap().len())
        .sum();
    assert!(full_size > 0);

    // Re-open with a budget of half the populated size and enforce it:
    // the store must shrink under the cap but keep valid shards.
    let bounded = DiskCache::open(&dir, Some(full_size / 2)).unwrap();
    bounded.enforce_limit();
    let kept: u64 = shards(&dir)
        .iter()
        .map(|p| std::fs::metadata(p).unwrap().len())
        .sum();
    assert!(
        kept <= full_size / 2,
        "eviction must respect the byte budget"
    );
    assert!(!shards(&dir).is_empty(), "newest shards survive");

    // A warm run over the evicted store still reproduces the artifact —
    // evicted entries are recomputed, surviving ones hit.
    let warm_cfg = train_ctx_with_cache(4, &dir);
    let warm = run_search(&warm_cfg).artifact.to_json_string();
    let stats = warm_cfg.engine().disk_stats().unwrap();
    assert_eq!(warm, run_search(&train_ctx(4)).artifact.to_json_string());
    assert!(stats.hits > 0 && stats.misses > 0);

    std::fs::remove_dir_all(&dir).ok();
}
