//! Property tests of the LO-FI surrogate against the full discrete-event
//! simulator on quiescent (steady-load, no-churn) profiles — the regime
//! the fidelity ladder demotes nodes in (DESIGN.md §8).
//!
//! Tolerances are deliberately loose for the *uncalibrated* surrogate
//! (the analytic queueing formulas only approximate the event loop) and
//! tight for the *calibrated* one (the ladder always calibrates from the
//! node's last HI-FI round before trusting the surrogate).

use ahq_sim::{
    AppSpec, MachineConfig, NodeSim, Partition, SharingPolicy, SteadyCalibration, Surrogate,
    WindowObservation,
};
use ahq_workloads::profiles;
use proptest::prelude::*;

const WINDOWS: usize = 8;
const WINDOW_MS: f64 = 500.0;

fn lc_pool() -> Vec<AppSpec> {
    vec![profiles::xapian(), profiles::masstree(), profiles::silo()]
}

fn be_pool() -> Vec<AppSpec> {
    vec![profiles::fluidanimate(), profiles::streamcluster()]
}

/// Runs the full simulator for [`WINDOWS`] windows at a fixed load.
fn simulate(specs: &[AppSpec], loads: &[(String, f64)], seed: u64) -> Vec<WindowObservation> {
    let machine = MachineConfig::paper_xeon();
    let mut sim =
        NodeSim::with_reference(machine, machine, specs.to_vec(), seed).expect("valid specs");
    for (name, load) in loads {
        sim.set_load(name, *load).expect("LC load applies");
    }
    (0..WINDOWS).map(|_| sim.run_window()).collect()
}

/// Mean observed p95 of app 0 across windows; `None` if any window had no
/// estimate.
fn mean_p95(observations: &[WindowObservation]) -> Option<f64> {
    let mut sum = 0.0;
    for obs in observations {
        sum += obs.lc[0].p95_ms?;
    }
    Some(sum / observations.len() as f64)
}

/// Mean observed IPC of BE app 0 across windows.
fn mean_ipc(observations: &[WindowObservation]) -> f64 {
    observations.iter().map(|o| o.be[0].ipc).sum::<f64>() / observations.len() as f64
}

fn build_surrogate(
    specs: &[AppSpec],
    loads: &[(String, f64)],
    calibration: Option<&SteadyCalibration>,
) -> Surrogate {
    let machine = MachineConfig::paper_xeon();
    Surrogate::new(
        machine,
        machine,
        specs,
        loads,
        &Partition::all_shared(specs.len()),
        SharingPolicy::Fair,
        WINDOW_MS,
        calibration,
    )
    .expect("valid surrogate config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On a quiescent profile the uncalibrated surrogate lands in the same
    /// regime as the event simulator: LC tail within a small constant
    /// factor, BE IPC within 15 %, and matched QoS bookkeeping shape.
    #[test]
    fn surrogate_tracks_quiescent_node_sim(
        lc_index in 0usize..3,
        be_index in prop::option::of(0usize..2),
        load in prop::sample::select(vec![0.2f64, 0.3, 0.4, 0.5]),
        seed in 0u64..1000,
    ) {
        let mut specs = vec![lc_pool()[lc_index].clone()];
        if let Some(i) = be_index {
            specs.push(be_pool()[i].clone());
        }
        let loads = vec![(specs[0].name().to_owned(), load)];
        let observed = simulate(&specs, &loads, seed);
        let surrogate = build_surrogate(&specs, &loads, None).window(0);

        if let Some(sim_p95) = mean_p95(&observed) {
            let sur_p95 = surrogate.lc[0]
                .p95_ms
                .expect("loaded surrogate app has a tail estimate");
            let ratio = sur_p95 / sim_p95;
            prop_assert!(
                (0.4..=2.5).contains(&ratio),
                "p95 ratio {ratio:.3} outside tolerance (surrogate {sur_p95:.3} ms \
                 vs simulated {sim_p95:.3} ms)"
            );
        }
        if be_index.is_some() {
            let sim_ipc = mean_ipc(&observed);
            let sur_ipc = surrogate.be[0].ipc;
            let rel = (sur_ipc - sim_ipc).abs() / sim_ipc.max(1e-9);
            prop_assert!(
                rel <= 0.15,
                "BE IPC off by {:.1} % (surrogate {sur_ipc:.3} vs simulated {sim_ipc:.3})",
                rel * 100.0
            );
        }
        prop_assert_eq!(surrogate.lc[0].drops, 0, "quiescent loads must not drop");
    }

    /// Calibrated from the simulator's own windows — the ladder's actual
    /// demotion path — the surrogate reproduces the observed steady state
    /// almost exactly.
    #[test]
    fn calibrated_surrogate_reproduces_observed_means(
        lc_index in 0usize..3,
        be_index in 0usize..2,
        load in prop::sample::select(vec![0.3f64, 0.4]),
        seed in 0u64..1000,
    ) {
        let specs = vec![lc_pool()[lc_index].clone(), be_pool()[be_index].clone()];
        let loads = vec![(specs[0].name().to_owned(), load)];
        let observed = simulate(&specs, &loads, seed);
        let calibration = SteadyCalibration::from_windows(&observed);
        let surrogate = build_surrogate(&specs, &loads, Some(&calibration)).window(0);

        if let Some(sim_p95) = mean_p95(&observed) {
            let sur_p95 = surrogate.lc[0].p95_ms.expect("calibrated tail present");
            prop_assert!(
                (sur_p95 - sim_p95).abs() <= 1e-9,
                "calibrated p95 {sur_p95} != observed mean {sim_p95}"
            );
        }
        let sim_ipc = mean_ipc(&observed);
        prop_assert!(
            (surrogate.be[0].ipc - sim_ipc).abs() <= 1e-9,
            "calibrated IPC {} != observed mean {sim_ipc}",
            surrogate.be[0].ipc
        );
    }
}
