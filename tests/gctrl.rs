//! Tier-1 pins for the `gctrl` family: worker-count invariance of the
//! rendered report and the controller's headline win over static
//! entropy-aware placement.

use ahq_experiments::{gctrl, ExpConfig, ExpContext};

/// `repro gctrl` output at 256 nodes must be byte-identical for any
/// worker count: the controller sits on the coordinator, every node round
/// is a closed job, and results reassemble in submission order.
#[test]
fn gctrl_output_identical_across_jobs() {
    let render = |jobs: usize| {
        let mut cfg = ExpContext::with_jobs(
            ExpConfig {
                quick: true,
                seed: 42,
            },
            jobs,
        );
        cfg.cluster.nodes = Some(256);
        cfg.cluster.rounds = Some(8);
        gctrl::run(&cfg).render()
    };
    let sequential = render(1);
    let parallel = render(8);
    assert!(
        sequential.contains("ctrl+learned"),
        "report covers the learned arm"
    );
    assert_eq!(
        sequential, parallel,
        "gctrl report must be byte-identical for --jobs 1 vs --jobs 8"
    );
}

/// The paper-level claim of the control plane: at 256 churned nodes the
/// learned-weight controller beats static entropy-aware placement on
/// both steady-state mean and p95 cluster `E_S`.
#[test]
fn learned_controller_beats_static_placement_at_256_nodes() {
    let cfg = ExpContext::with_jobs(
        ExpConfig {
            quick: false,
            seed: 42,
        },
        8,
    );
    let arms = gctrl::arms();
    let baseline_arm = arms
        .iter()
        .find(|a| a.name == "entropy-aware")
        .expect("static arm exists");
    let learned_arm = arms
        .iter()
        .find(|a| a.name == "ctrl+learned")
        .expect("learned arm exists");

    let baseline = gctrl::run_arm(&cfg, 256, baseline_arm);
    let learned = gctrl::run_arm(&cfg, 256, learned_arm);
    let n = (baseline.rounds * baseline.windows_per_round) / 2;

    assert_eq!(learned.controller.as_deref(), Some("global-arq+learned"));
    assert!(
        learned.ctrl_migrations > 0,
        "the controller must actually act"
    );
    assert!(
        learned.steady_mean_entropy(n) < baseline.steady_mean_entropy(n),
        "steady mean E_S: learned {:.4} must beat static {:.4}",
        learned.steady_mean_entropy(n),
        baseline.steady_mean_entropy(n),
    );
    assert!(
        learned.steady_p95_entropy(n) < baseline.steady_p95_entropy(n),
        "steady p95 E_S: learned {:.4} must beat static {:.4}",
        learned.steady_p95_entropy(n),
        baseline.steady_p95_entropy(n),
    );
}

/// Migration-cost accounting stays internally consistent: every LC cold
/// start charges at least one warm-up window, rollbacks never exceed
/// controller migrations, and the per-round migration counters in the
/// window stats sum to the report's totals.
#[test]
fn migration_cost_accounting_is_consistent() {
    let mut cfg = ExpContext::with_jobs(
        ExpConfig {
            quick: true,
            seed: 42,
        },
        8,
    );
    cfg.cluster.nodes = Some(32);
    cfg.cluster.rounds = Some(10);
    let arms = gctrl::arms();
    let ctrl_arm = arms.iter().find(|a| a.name == "ctrl").expect("ctrl arm");
    let report = gctrl::run_arm(&cfg, 32, ctrl_arm);

    assert!(report.ctrl_rollbacks <= report.ctrl_migrations);
    assert!(report.warmup_windows >= report.cold_starts);
    let windows_per_round = report.windows_per_round as u64;
    let per_round_sum: u64 = report
        .window_stats
        .iter()
        .map(|w| w.round_migrations)
        .sum::<u64>()
        / windows_per_round.max(1);
    // Placer migrations + controller moves + rollback restores all enter
    // round_migrations exactly once; a rollback restores into the *next*
    // round it disturbs, so a final-round rollback's restore lands in a
    // round that never runs and is the one disturbance allowed to be
    // missing from the window stats.
    let total = report.migrations + report.ctrl_migrations + report.ctrl_rollbacks;
    assert!(
        per_round_sum == total || per_round_sum + 1 == total,
        "per-round disturbance counters must sum to the report totals \
         (modulo one final-round rollback): {per_round_sum} vs {total}"
    );
}
