//! Integration tests of the deterministic parallel run engine: figure
//! output must be byte-identical for any worker count, and shared
//! configurations must be answered by the run cache.

use ahq_experiments::{fig2, fig8, ExpConfig, ExpContext, RunSpec, StrategyKind};
use ahq_sim::MachineConfig;
use ahq_workloads::mixes;

fn cfg_with_jobs(jobs: usize) -> ExpContext {
    ExpContext::with_jobs(
        ExpConfig {
            quick: true,
            seed: 97,
        },
        jobs,
    )
}

/// A full figure module, run sequentially and with 8 workers, must render
/// to the same JSON byte for byte.
#[test]
fn figure_output_is_identical_across_worker_counts() {
    let sequential = fig2::run(&cfg_with_jobs(1));
    let parallel = fig2::run(&cfg_with_jobs(8));
    assert_eq!(
        serde_json::to_string(&sequential).expect("serializable"),
        serde_json::to_string(&parallel).expect("serializable"),
        "fig2 output must not depend on the worker count"
    );
}

/// The fig8-style sweep (the workhorse grid behind Figs. 8, 9, 11 and the
/// headline numbers) must also be invariant under parallelism, including
/// every derived per-cell metric.
#[test]
fn sweep_cells_are_identical_across_worker_counts() {
    let mix = mixes::fluidanimate_mix();
    let render = |jobs: usize| -> Vec<String> {
        let cfg = cfg_with_jobs(jobs);
        fig8::sweep(&cfg, &mix, "xapian", 0.2, &[0.1, 0.9])
            .into_iter()
            .map(|c| format!("{c:?}"))
            .collect()
    };
    assert_eq!(render(1), render(4));
}

/// A duplicated spec in one batch executes exactly once; a repeat of the
/// whole batch executes nothing new.
#[test]
fn duplicate_specs_execute_once_and_repeats_hit_the_cache() {
    let cfg = cfg_with_jobs(4);
    let mix = mixes::fluidanimate_mix();
    let spec = RunSpec {
        windows: 8,
        ..RunSpec::strategy(
            &cfg,
            MachineConfig::paper_xeon(),
            &mix,
            &[("xapian", 0.4), ("moses", 0.2), ("img-dnn", 0.2)],
            StrategyKind::Unmanaged,
        )
    };
    let batch = [spec.clone(), spec.clone(), spec];
    cfg.engine().run_all(&batch);
    let first = cfg.engine().stats();
    assert_eq!(first.misses, 1, "three identical submissions, one run");
    assert_eq!(first.hits, 2);

    cfg.engine().run_all(&batch);
    let second = cfg.engine().stats();
    assert_eq!(second.misses, 1, "the repeat batch executes nothing");
    assert_eq!(second.hits, 5);
}

/// Figures sharing configurations actually share runs: fig3's entropy
/// series re-reads the budget points fig2 already measured.
#[test]
fn cross_figure_configurations_are_cached() {
    let cfg = cfg_with_jobs(2);
    let before_misses = {
        fig2::entropy_at_budget(&cfg, 6, 20, StrategyKind::Arq);
        cfg.engine().stats().misses
    };
    // The same budget point again — a different figure would issue exactly
    // this spec.
    fig2::entropy_at_budget(&cfg, 6, 20, StrategyKind::Arq);
    let stats = cfg.engine().stats();
    assert_eq!(stats.misses, before_misses, "no new execution");
    assert!(stats.hits >= 1);
}
