//! Integration tests of the cluster layer as wired into the experiment
//! harness: worker-count invariance of `repro cluster` and the
//! entropy-aware placer's headline claim.

use ahq_cluster::{run_cluster, LocalSched, PlacerKind, SequentialRunner};
use ahq_experiments::cluster::{scenario, EngineRunner};
use ahq_experiments::{ExpConfig, ExpContext};

fn quick_cfg(jobs: usize) -> ExpContext {
    ExpContext::with_jobs(
        ExpConfig {
            quick: true,
            seed: 42,
        },
        jobs,
    )
}

#[test]
fn sixty_four_nodes_are_byte_identical_for_any_job_count() {
    let serial = quick_cfg(1);
    let parallel = quick_cfg(8);
    let config = |cfg: &ExpContext| scenario(cfg, 64, PlacerKind::EntropyAware, LocalSched::Arq);
    let a = run_cluster(config(&serial), &EngineRunner::new(serial.engine()));
    let b = run_cluster(config(&parallel), &EngineRunner::new(parallel.engine()));
    assert_eq!(
        serde_json::to_string(&a).expect("serializable"),
        serde_json::to_string(&b).expect("serializable"),
        "cluster output must not depend on the worker count"
    );
}

#[test]
fn engine_runner_is_equivalent_to_the_sequential_reference() {
    let cfg = quick_cfg(4);
    let mut config = scenario(&cfg, 16, PlacerKind::LeastLoaded, LocalSched::Unmanaged);
    config.rounds = 3;
    let engine_side = run_cluster(config.clone(), &EngineRunner::new(cfg.engine()));
    let reference = run_cluster(config, &SequentialRunner);
    assert_eq!(
        serde_json::to_string(&engine_side).expect("serializable"),
        serde_json::to_string(&reference).expect("serializable"),
        "the engine-backed runner must match per-job execution exactly"
    );
}

#[test]
fn entropy_aware_placement_beats_first_fit_on_a_churned_fleet() {
    let cfg = quick_cfg(0);
    let runner = EngineRunner::new(cfg.engine());
    let build = |placer| scenario(&cfg, 64, placer, LocalSched::Unmanaged);
    let steady = {
        let c = build(PlacerKind::FirstFit);
        (c.rounds * c.windows_per_round) / 2
    };
    let first_fit = run_cluster(build(PlacerKind::FirstFit), &runner);
    let entropy_aware = run_cluster(build(PlacerKind::EntropyAware), &runner);
    let ff = first_fit.steady_mean_entropy(steady);
    let ea = entropy_aware.steady_mean_entropy(steady);
    assert!(
        ea <= ff + 1e-9,
        "entropy-aware steady mean E_S ({ea:.4}) must not exceed first-fit ({ff:.4})"
    );
    assert!(
        first_fit.placements == entropy_aware.placements,
        "both placers face the same churn stream"
    );
}
