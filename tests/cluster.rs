//! Integration tests of the cluster layer as wired into the experiment
//! harness: worker-count invariance of `repro cluster` and the
//! entropy-aware placer's headline claim.

use ahq_cluster::{run_cluster, FidelityMode, LocalSched, PlacerKind, SequentialRunner};
use ahq_experiments::cluster::{scenario, EngineRunner};
use ahq_experiments::{ExpConfig, ExpContext};

fn quick_cfg(jobs: usize) -> ExpContext {
    ExpContext::with_jobs(
        ExpConfig {
            quick: true,
            seed: 42,
        },
        jobs,
    )
}

#[test]
fn sixty_four_nodes_are_byte_identical_for_any_job_count() {
    let serial = quick_cfg(1);
    let parallel = quick_cfg(8);
    let config = |cfg: &ExpContext| scenario(cfg, 64, PlacerKind::EntropyAware, LocalSched::Arq);
    let a = run_cluster(config(&serial), &EngineRunner::new(serial.engine()));
    let b = run_cluster(config(&parallel), &EngineRunner::new(parallel.engine()));
    assert_eq!(
        serde_json::to_string(&a).expect("serializable"),
        serde_json::to_string(&b).expect("serializable"),
        "cluster output must not depend on the worker count"
    );
}

#[test]
fn engine_runner_is_equivalent_to_the_sequential_reference() {
    let cfg = quick_cfg(4);
    let mut config = scenario(&cfg, 16, PlacerKind::LeastLoaded, LocalSched::Unmanaged);
    config.rounds = 3;
    let engine_side = run_cluster(config.clone(), &EngineRunner::new(cfg.engine()));
    let reference = run_cluster(config, &SequentialRunner::default());
    assert_eq!(
        serde_json::to_string(&engine_side).expect("serializable"),
        serde_json::to_string(&reference).expect("serializable"),
        "the engine-backed runner must match per-job execution exactly"
    );
}

/// The churned 256-node ladder scenario the fidelity tests pin on.
fn ladder_scenario(cfg: &ExpContext, fidelity: FidelityMode) -> ahq_cluster::ClusterConfig {
    let mut config = scenario(cfg, 256, PlacerKind::EntropyAware, LocalSched::Arq);
    config.rounds = 6;
    config.fidelity = fidelity;
    config
}

#[test]
fn ladder_at_256_nodes_is_byte_identical_for_any_job_count() {
    let serial = quick_cfg(1);
    let parallel = quick_cfg(8);
    let a = run_cluster(
        ladder_scenario(&serial, FidelityMode::Ladder),
        &EngineRunner::new(serial.engine()),
    );
    let b = run_cluster(
        ladder_scenario(&parallel, FidelityMode::Ladder),
        &EngineRunner::new(parallel.engine()),
    );
    assert_eq!(
        serde_json::to_string(&a).expect("serializable"),
        serde_json::to_string(&b).expect("serializable"),
        "ladder promotion/demotion must not depend on the worker count"
    );
}

#[test]
fn ladder_tracks_full_fidelity_steady_entropy_at_256_nodes() {
    let cfg = quick_cfg(0);
    let runner = EngineRunner::new(cfg.engine());
    let steady = {
        let c = ladder_scenario(&cfg, FidelityMode::Full);
        (c.rounds * c.windows_per_round) / 2
    };
    let full = run_cluster(ladder_scenario(&cfg, FidelityMode::Full), &runner);
    let ladder = run_cluster(ladder_scenario(&cfg, FidelityMode::Ladder), &runner);
    assert!(
        ladder.window_stats.iter().any(|w| w.lofi_nodes > 0),
        "the ladder demotes at least one node on this scenario"
    );
    assert!(
        full.window_stats.iter().all(|w| w.lofi_nodes == 0),
        "full fidelity never demotes"
    );
    // Documented tolerance (DESIGN.md §8): the ladder may shift placement
    // slightly through its surrogate-derived entropy history, but the
    // steady-state cluster E_S must stay within 0.05 mean / 0.10 p95 of
    // the full-fidelity reference.
    let dm = (full.steady_mean_entropy(steady) - ladder.steady_mean_entropy(steady)).abs();
    let dp = (full.steady_p95_entropy(steady) - ladder.steady_p95_entropy(steady)).abs();
    assert!(dm <= 0.05, "steady mean E_S diverges by {dm:.4}");
    assert!(dp <= 0.10, "steady p95 E_S diverges by {dp:.4}");
}

#[test]
fn entropy_aware_placement_beats_first_fit_on_a_churned_fleet() {
    let cfg = quick_cfg(0);
    let runner = EngineRunner::new(cfg.engine());
    let build = |placer| scenario(&cfg, 64, placer, LocalSched::Unmanaged);
    let steady = {
        let c = build(PlacerKind::FirstFit);
        (c.rounds * c.windows_per_round) / 2
    };
    let first_fit = run_cluster(build(PlacerKind::FirstFit), &runner);
    let entropy_aware = run_cluster(build(PlacerKind::EntropyAware), &runner);
    let ff = first_fit.steady_mean_entropy(steady);
    let ea = entropy_aware.steady_mean_entropy(steady);
    assert!(
        ea <= ff + 1e-9,
        "entropy-aware steady mean E_S ({ea:.4}) must not exceed first-fit ({ff:.4})"
    );
    assert!(
        first_fit.placements == entropy_aware.placements,
        "both placers face the same churn stream"
    );
}
