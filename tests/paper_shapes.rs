//! Paper-shape integration tests: the qualitative results of the Ah-Q
//! evaluation must hold in this reproduction — who wins, where, and in
//! which direction. These are the assertions EXPERIMENTS.md summarises.

use ahq_core::EntropyModel;
use ahq_experiments::StrategyKind;
use ahq_sched::run;
use ahq_sim::{MachineConfig, NodeSim};
use ahq_workloads::mixes::{self, Mix};

fn steady(
    mix: &Mix,
    loads: &[(&str, f64)],
    strategy: StrategyKind,
    machine: MachineConfig,
) -> (f64, f64, f64) {
    let mut sim =
        NodeSim::with_reference(machine, MachineConfig::paper_xeon(), mix.apps.clone(), 42)
            .unwrap();
    for (name, load) in loads {
        sim.set_load(name, *load).unwrap();
    }
    let mut sched = strategy.build();
    let result = run(&mut sim, sched.as_mut(), 120, &EntropyModel::default());
    (
        result.steady_lc_entropy(40),
        result.steady_be_entropy(40),
        result.steady_entropy(40),
    )
}

#[test]
fn unmanaged_wins_at_low_load_with_a_gentle_be_app() {
    // Fig. 8, leftmost points: sharing maximises utilization when there is
    // nothing to protect against.
    let mix = mixes::fluidanimate_mix();
    let loads = [("xapian", 0.1), ("moses", 0.2), ("img-dnn", 0.2)];
    let machine = MachineConfig::paper_xeon();
    let (_, _, unmanaged) = steady(&mix, &loads, StrategyKind::Unmanaged, machine);
    let (_, _, parties) = steady(&mix, &loads, StrategyKind::Parties, machine);
    assert!(
        unmanaged < parties,
        "unmanaged E_S {unmanaged:.3} must beat PARTIES {parties:.3} at low load"
    );
    assert!(unmanaged < 0.05, "low load is nearly interference-free");
}

#[test]
fn the_stream_hog_defeats_unmanaged_but_not_arq() {
    // Fig. 9: STREAM saturates cache/bandwidth; only isolation-capable
    // strategies protect the LC applications.
    let mix = mixes::stream_mix();
    let loads = [("xapian", 0.5), ("moses", 0.2), ("img-dnn", 0.2)];
    let machine = MachineConfig::paper_xeon();
    let (lc_unmanaged, _, es_unmanaged) = steady(&mix, &loads, StrategyKind::Unmanaged, machine);
    let (lc_arq, _, es_arq) = steady(&mix, &loads, StrategyKind::Arq, machine);
    assert!(lc_unmanaged > 0.1, "unmanaged LC entropy {lc_unmanaged:.3}");
    assert!(lc_arq < 0.05, "ARQ LC entropy {lc_arq:.3}");
    assert!(es_arq < es_unmanaged);
}

#[test]
fn lc_first_trades_be_for_lc() {
    // Fig. 8: LC-first cuts E_LC vs Unmanaged at the cost of E_BE.
    let mix = mixes::stream_mix();
    let loads = [("xapian", 0.7), ("moses", 0.2), ("img-dnn", 0.2)];
    let machine = MachineConfig::paper_xeon();
    let (lc_u, be_u, _) = steady(&mix, &loads, StrategyKind::Unmanaged, machine);
    let (lc_f, be_f, _) = steady(&mix, &loads, StrategyKind::LcFirst, machine);
    assert!(
        lc_f < lc_u,
        "LC-first must protect latency: {lc_f:.3} vs {lc_u:.3}"
    );
    assert!(
        be_f >= be_u - 0.02,
        "the protection is paid by the BE side: {be_f:.3} vs {be_u:.3}"
    );
}

#[test]
fn parties_protects_qos_but_starves_be() {
    // Fig. 13's snapshot: PARTIES leaves the BE application a sliver.
    let mix = mixes::stream_mix();
    let loads = [("xapian", 0.3), ("moses", 0.2), ("img-dnn", 0.2)];
    let machine = MachineConfig::paper_xeon();
    let (lc_p, be_p, _) = steady(&mix, &loads, StrategyKind::Parties, machine);
    let (_, be_a, _) = steady(&mix, &loads, StrategyKind::Arq, machine);
    assert!(lc_p < 0.1, "PARTIES keeps QoS under control: {lc_p:.3}");
    assert!(
        be_a < be_p,
        "ARQ's shared region must leave BE better off: {be_a:.3} vs {be_p:.3}"
    );
}

#[test]
fn arq_has_lowest_entropy_at_high_load() {
    // The headline: at high load ARQ's mixed isolation/sharing wins.
    let mix = mixes::fluidanimate_mix();
    let loads = [("xapian", 0.9), ("moses", 0.2), ("img-dnn", 0.2)];
    let machine = MachineConfig::paper_xeon();
    let (_, _, arq) = steady(&mix, &loads, StrategyKind::Arq, machine);
    for other in [
        StrategyKind::Unmanaged,
        StrategyKind::LcFirst,
        StrategyKind::Parties,
    ] {
        let (_, _, es) = steady(&mix, &loads, other, machine);
        assert!(
            arq <= es + 0.01,
            "ARQ {arq:.3} must not lose to {} ({es:.3}) at high load",
            other.name()
        );
    }
}

#[test]
fn scarcer_machines_have_higher_entropy() {
    // Property ② end to end (Fig. 2): fewer cores, more entropy.
    let mix = mixes::fluidanimate_mix();
    let loads = [("xapian", 0.2), ("moses", 0.2), ("img-dnn", 0.2)];
    let rich = steady(
        &mix,
        &loads,
        StrategyKind::Unmanaged,
        MachineConfig::paper_xeon(),
    )
    .2;
    let poor = steady(
        &mix,
        &loads,
        StrategyKind::Unmanaged,
        MachineConfig::paper_xeon().with_budget(5, 20),
    )
    .2;
    assert!(
        poor > rich + 0.03,
        "5 cores ({poor:.3}) must be worse than 10 ({rich:.3})"
    );
}
