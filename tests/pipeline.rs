//! Cross-crate integration tests: the full theory → simulator → scheduler
//! pipeline.

use ahq_core::{EntropyModel, QosElasticity, RelativeImportance};
use ahq_experiments::StrategyKind;
use ahq_sched::{observe, run, RunResult};
use ahq_sim::{MachineConfig, NodeSim};
use ahq_workloads::mixes;

fn run_stack(strategy: StrategyKind, seed: u64, windows: usize) -> RunResult {
    let mix = mixes::fluidanimate_mix();
    let mut sim = NodeSim::new(MachineConfig::paper_xeon(), mix.apps.clone(), seed).unwrap();
    sim.set_load("xapian", 0.5).unwrap();
    sim.set_load("moses", 0.2).unwrap();
    sim.set_load("img-dnn", 0.2).unwrap();
    let mut sched = strategy.build();
    run(&mut sim, sched.as_mut(), windows, &EntropyModel::default())
}

#[test]
fn every_strategy_completes_on_every_mix() {
    for mix in [
        mixes::fluidanimate_mix(),
        mixes::stream_mix(),
        mixes::sphinx_mix(),
        mixes::large_mix(),
    ] {
        for strategy in StrategyKind::all() {
            let mut sim = NodeSim::new(MachineConfig::paper_xeon(), mix.apps.clone(), 3).unwrap();
            for name in mix.lc_names() {
                sim.set_load(name, 0.2).unwrap();
            }
            let mut sched = strategy.build();
            let result = run(&mut sim, sched.as_mut(), 20, &EntropyModel::default());
            assert_eq!(
                result.observations.len(),
                20,
                "{} on {}",
                strategy.name(),
                mix.name
            );
            for e in &result.entropy {
                assert!((0.0..=1.0).contains(&e.system));
            }
        }
    }
}

#[test]
fn end_to_end_determinism() {
    for strategy in StrategyKind::all() {
        let a = run_stack(strategy, 77, 30);
        let b = run_stack(strategy, 77, 30);
        assert_eq!(
            a.observations,
            b.observations,
            "{} must be reproducible",
            strategy.name()
        );
        assert_eq!(a.violations, b.violations);
        let c = run_stack(strategy, 78, 30);
        assert_ne!(
            a.observations,
            c.observations,
            "{} must respond to the seed",
            strategy.name()
        );
    }
}

#[test]
fn run_results_serialize_and_deserialize() {
    let result = run_stack(StrategyKind::Arq, 5, 10);
    let json = ahq_core::json::to_string(&result);
    let back: RunResult = ahq_core::json::from_str(&json).expect("deserializable");
    assert_eq!(back.strategy, result.strategy);
    assert_eq!(back.observations, result.observations);
    assert_eq!(back.partitions, result.partitions);
    assert_eq!(back.entropy, result.entropy);
    assert_eq!(back.violations, result.violations);
    assert_eq!(back.adjustments, result.adjustments);
    // The pretty form is what artifacts on disk use; it must agree.
    let pretty: RunResult = ahq_core::json::from_str(&ahq_core::json::to_string_pretty(&result))
        .expect("pretty form deserializable");
    assert_eq!(pretty.observations, result.observations);
}

#[test]
fn entropy_models_agree_between_runner_and_manual_computation() {
    let result = run_stack(StrategyKind::Unmanaged, 9, 12);
    let model = EntropyModel::default();
    for (obs, entropy) in result.observations.iter().zip(result.entropy.iter()) {
        let (lc, be) = observe::measurements(obs);
        let manual = model.evaluate_auto(&lc, &be);
        assert_eq!(&manual, entropy);
    }
}

#[test]
fn partitions_never_violate_machine_capacity() {
    let machine = MachineConfig::paper_xeon();
    for strategy in StrategyKind::all() {
        let result = run_stack(strategy, 13, 40);
        for p in &result.partitions {
            assert!(p.validate(&machine).is_ok(), "{}", strategy.name());
            // Strict-partitioners account every core; sharers never
            // oversubscribe.
            assert!(p.isolated_cores() <= machine.cores);
            assert!(p.isolated_ways() <= machine.llc_ways);
        }
    }
}

#[test]
fn relative_importance_extremes_isolate_the_components() {
    let mix = mixes::stream_mix();
    let mut sim = NodeSim::new(MachineConfig::paper_xeon(), mix.apps.clone(), 21).unwrap();
    sim.set_load("xapian", 0.6).unwrap();
    let obs = sim.run_windows(8);
    let last = obs.last().unwrap();
    let (lc, be) = observe::measurements(last);
    let lc_only = EntropyModel::new(RelativeImportance::LC_ONLY).evaluate(&lc, &be);
    let be_only = EntropyModel::new(RelativeImportance::BE_ONLY).evaluate(&lc, &be);
    assert_eq!(lc_only.system, lc_only.lc);
    assert_eq!(be_only.system, be_only.be);
}

#[test]
fn zero_elasticity_yield_is_stricter() {
    let result = run_stack(StrategyKind::Unmanaged, 31, 20);
    let strict_model = EntropyModel::default().with_elasticity(QosElasticity::NONE);
    let lax_model = EntropyModel::default().with_elasticity(QosElasticity::new(0.2).unwrap());
    for obs in &result.observations {
        let (lc, be) = observe::measurements(obs);
        let strict = strict_model.evaluate(&lc, &be);
        let lax = lax_model.evaluate(&lc, &be);
        assert!(lax.yield_fraction >= strict.yield_fraction);
    }
}
