//! Cross-crate integration tests for the offline policy search: the
//! `train` / `replay` experiment families (`ahq-train` driven through
//! the deterministic run engine).

use ahq_experiments::train::{run_replay_arm, run_search};
use ahq_experiments::{ExpConfig, ExpContext};
use ahq_train::{Genome, GenomeBounds, PolicyArtifact};

fn train_ctx(jobs: usize) -> ExpContext {
    let mut cfg = ExpContext::with_jobs(
        ExpConfig {
            quick: true,
            seed: 42,
        },
        jobs,
    );
    cfg.train.population = Some(6);
    cfg.train.generations = Some(3);
    cfg
}

#[test]
fn genome_round_trips_through_core_json() {
    let bounds = GenomeBounds::default();
    let mut genome = Genome::from_vec(
        &[
            1.68, 0.0, 1.212, 1.541, 0.407, 2.0, 0.085, 0.045, 0.035, 74.115, 1.0,
        ],
        &bounds,
    );
    genome.weights.es = 1.2345678901234567; // exercise shortest-round-trip floats
    let text = ahq_core::json::to_string(&genome);
    let back: Genome = ahq_core::json::from_str(&text).expect("genome deserializable");
    assert_eq!(back, genome);
    assert_eq!(back.to_vec(), genome.to_vec());
}

#[test]
fn training_output_identical_across_jobs() {
    let a = run_search(&train_ctx(1));
    let b = run_search(&train_ctx(8));
    assert_eq!(
        a.artifact.to_json_string(),
        b.artifact.to_json_string(),
        "the policy artifact must be byte-identical for any worker count"
    );
    assert_eq!(a.artifact.history, b.artifact.history);
    assert_eq!(a.evaluations, b.evaluations);
    assert_eq!(a.unique_genomes, b.unique_genomes);
}

#[test]
fn search_reports_cache_uplift_and_beats_its_baseline() {
    let cfg = train_ctx(4);
    let outcome = run_search(&cfg);
    // The GA re-visits elites and near-duplicate node jobs; both layers
    // of memoization must show hits.
    assert!(
        outcome.evaluations > outcome.unique_genomes,
        "genome-level memo never hit"
    );
    let stats = cfg.engine().stats();
    assert!(
        stats.hits > 0,
        "engine run cache saw no shared node jobs across candidates"
    );
    assert!(
        outcome.artifact.fitness.scalar() <= outcome.artifact.baseline.scalar(),
        "search returned something worse than the incumbent it started from"
    );
}

#[test]
fn emitted_artifact_reloads_and_beats_static_placement_at_256_nodes() {
    // Train (quick budget), emit the artifact, reload it through
    // ahq_core::json, and replay on a fleet size the search never saw.
    let cfg = train_ctx(8);
    let outcome = run_search(&cfg);

    let dir = std::env::temp_dir().join("ahq-train-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("policy.json");
    outcome.artifact.save(&path).unwrap();
    let reloaded = PolicyArtifact::load(&path).unwrap();
    assert_eq!(reloaded, outcome.artifact);
    std::fs::remove_dir_all(&dir).ok();

    let nodes = 256;
    let hand_tuned = run_replay_arm(&cfg, nodes, None);
    let trained = run_replay_arm(&cfg, nodes, Some(&reloaded.genome));
    let n = (hand_tuned.rounds * hand_tuned.windows_per_round) / 2;
    let base = hand_tuned.steady_mean_entropy(n);
    let tuned = trained.steady_mean_entropy(n);
    assert!(
        tuned <= base,
        "trained policy must beat hand-tuned EntropyAware on steady-state \
         mean E_S at {nodes} churned nodes: trained {tuned:.4} vs static {base:.4}"
    );
}
