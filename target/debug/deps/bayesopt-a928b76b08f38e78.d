/root/repo/target/debug/deps/bayesopt-a928b76b08f38e78.d: crates/bench/benches/bayesopt.rs Cargo.toml

/root/repo/target/debug/deps/libbayesopt-a928b76b08f38e78.rmeta: crates/bench/benches/bayesopt.rs Cargo.toml

crates/bench/benches/bayesopt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
