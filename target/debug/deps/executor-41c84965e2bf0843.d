/root/repo/target/debug/deps/executor-41c84965e2bf0843.d: crates/bench/benches/executor.rs Cargo.toml

/root/repo/target/debug/deps/libexecutor-41c84965e2bf0843.rmeta: crates/bench/benches/executor.rs Cargo.toml

crates/bench/benches/executor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
