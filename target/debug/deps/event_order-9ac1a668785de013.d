/root/repo/target/debug/deps/event_order-9ac1a668785de013.d: crates/ahq-sim/tests/event_order.rs

/root/repo/target/debug/deps/event_order-9ac1a668785de013: crates/ahq-sim/tests/event_order.rs

crates/ahq-sim/tests/event_order.rs:
