/root/repo/target/debug/deps/perf_smoke-d510759295749653.d: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json

/root/repo/target/debug/deps/perf_smoke-d510759295749653: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json

crates/bench/src/bin/perf_smoke.rs:
crates/bench/src/bin/../../BENCH_node.json:
