/root/repo/target/debug/deps/schedulers-bf7edb357a54a0a4.d: crates/bench/benches/schedulers.rs Cargo.toml

/root/repo/target/debug/deps/libschedulers-bf7edb357a54a0a4.rmeta: crates/bench/benches/schedulers.rs Cargo.toml

crates/bench/benches/schedulers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
