/root/repo/target/debug/deps/executor-3a21063b8f572424.d: crates/ahq-experiments/../../tests/executor.rs Cargo.toml

/root/repo/target/debug/deps/libexecutor-3a21063b8f572424.rmeta: crates/ahq-experiments/../../tests/executor.rs Cargo.toml

crates/ahq-experiments/../../tests/executor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
