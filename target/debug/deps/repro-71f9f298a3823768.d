/root/repo/target/debug/deps/repro-71f9f298a3823768.d: crates/ahq-experiments/src/bin/repro.rs

/root/repo/target/debug/deps/repro-71f9f298a3823768: crates/ahq-experiments/src/bin/repro.rs

crates/ahq-experiments/src/bin/repro.rs:
