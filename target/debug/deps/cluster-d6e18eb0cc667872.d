/root/repo/target/debug/deps/cluster-d6e18eb0cc667872.d: crates/bench/benches/cluster.rs

/root/repo/target/debug/deps/cluster-d6e18eb0cc667872: crates/bench/benches/cluster.rs

crates/bench/benches/cluster.rs:
