/root/repo/target/debug/deps/ahq_bench-f282c97cc19614da.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libahq_bench-f282c97cc19614da.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libahq_bench-f282c97cc19614da.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
