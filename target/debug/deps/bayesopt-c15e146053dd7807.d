/root/repo/target/debug/deps/bayesopt-c15e146053dd7807.d: crates/bench/benches/bayesopt.rs

/root/repo/target/debug/deps/bayesopt-c15e146053dd7807: crates/bench/benches/bayesopt.rs

crates/bench/benches/bayesopt.rs:
