/root/repo/target/debug/deps/train-3f29ce11ae0974c3.d: crates/ahq-experiments/../../tests/train.rs Cargo.toml

/root/repo/target/debug/deps/libtrain-3f29ce11ae0974c3.rmeta: crates/ahq-experiments/../../tests/train.rs Cargo.toml

crates/ahq-experiments/../../tests/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
