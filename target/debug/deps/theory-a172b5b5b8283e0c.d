/root/repo/target/debug/deps/theory-a172b5b5b8283e0c.d: crates/bench/benches/theory.rs

/root/repo/target/debug/deps/theory-a172b5b5b8283e0c: crates/bench/benches/theory.rs

crates/bench/benches/theory.rs:
