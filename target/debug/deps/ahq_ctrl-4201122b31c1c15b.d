/root/repo/target/debug/deps/ahq_ctrl-4201122b31c1c15b.d: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs

/root/repo/target/debug/deps/ahq_ctrl-4201122b31c1c15b: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs

crates/ahq-ctrl/src/lib.rs:
crates/ahq-ctrl/src/config.rs:
crates/ahq-ctrl/src/global.rs:
