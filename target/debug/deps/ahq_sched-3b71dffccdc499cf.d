/root/repo/target/debug/deps/ahq_sched-3b71dffccdc499cf.d: crates/ahq-sched/src/lib.rs crates/ahq-sched/src/arq.rs crates/ahq-sched/src/clite.rs crates/ahq-sched/src/heracles.rs crates/ahq-sched/src/lcfirst.rs crates/ahq-sched/src/observe.rs crates/ahq-sched/src/parties.rs crates/ahq-sched/src/rollback.rs crates/ahq-sched/src/runner.rs crates/ahq-sched/src/unmanaged.rs Cargo.toml

/root/repo/target/debug/deps/libahq_sched-3b71dffccdc499cf.rmeta: crates/ahq-sched/src/lib.rs crates/ahq-sched/src/arq.rs crates/ahq-sched/src/clite.rs crates/ahq-sched/src/heracles.rs crates/ahq-sched/src/lcfirst.rs crates/ahq-sched/src/observe.rs crates/ahq-sched/src/parties.rs crates/ahq-sched/src/rollback.rs crates/ahq-sched/src/runner.rs crates/ahq-sched/src/unmanaged.rs Cargo.toml

crates/ahq-sched/src/lib.rs:
crates/ahq-sched/src/arq.rs:
crates/ahq-sched/src/clite.rs:
crates/ahq-sched/src/heracles.rs:
crates/ahq-sched/src/lcfirst.rs:
crates/ahq-sched/src/observe.rs:
crates/ahq-sched/src/parties.rs:
crates/ahq-sched/src/rollback.rs:
crates/ahq-sched/src/runner.rs:
crates/ahq-sched/src/unmanaged.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
