/root/repo/target/debug/deps/properties-698046212b7edc1c.d: crates/ahq-sched/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-698046212b7edc1c.rmeta: crates/ahq-sched/tests/properties.rs Cargo.toml

crates/ahq-sched/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
