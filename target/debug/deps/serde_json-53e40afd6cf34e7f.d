/root/repo/target/debug/deps/serde_json-53e40afd6cf34e7f.d: /tmp/ahq-verify/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-53e40afd6cf34e7f.rmeta: /tmp/ahq-verify/stubs/serde_json/src/lib.rs

/tmp/ahq-verify/stubs/serde_json/src/lib.rs:
