/root/repo/target/debug/deps/ahq_workloads-08741a176dd71fee.d: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libahq_workloads-08741a176dd71fee.rmeta: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs Cargo.toml

crates/ahq-workloads/src/lib.rs:
crates/ahq-workloads/src/load.rs:
crates/ahq-workloads/src/mixes.rs:
crates/ahq-workloads/src/profiles.rs:
crates/ahq-workloads/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
