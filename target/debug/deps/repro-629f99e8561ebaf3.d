/root/repo/target/debug/deps/repro-629f99e8561ebaf3.d: crates/ahq-experiments/src/bin/repro.rs

/root/repo/target/debug/deps/repro-629f99e8561ebaf3: crates/ahq-experiments/src/bin/repro.rs

crates/ahq-experiments/src/bin/repro.rs:
