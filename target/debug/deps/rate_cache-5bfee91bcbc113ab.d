/root/repo/target/debug/deps/rate_cache-5bfee91bcbc113ab.d: crates/ahq-sim/tests/rate_cache.rs Cargo.toml

/root/repo/target/debug/deps/librate_cache-5bfee91bcbc113ab.rmeta: crates/ahq-sim/tests/rate_cache.rs Cargo.toml

crates/ahq-sim/tests/rate_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
