/root/repo/target/debug/deps/properties-46e349aaa7300408.d: crates/ahq-sched/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-46e349aaa7300408.rmeta: crates/ahq-sched/tests/properties.rs Cargo.toml

crates/ahq-sched/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
