/root/repo/target/debug/deps/properties-70f3c7e500491265.d: crates/ahq-bayesopt/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-70f3c7e500491265.rmeta: crates/ahq-bayesopt/tests/properties.rs Cargo.toml

crates/ahq-bayesopt/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
