/root/repo/target/debug/deps/properties-010b5463e87154a8.d: crates/ahq-sim/tests/properties.rs

/root/repo/target/debug/deps/properties-010b5463e87154a8: crates/ahq-sim/tests/properties.rs

crates/ahq-sim/tests/properties.rs:
