/root/repo/target/debug/deps/ahq_ctrl-ea39348014c5b023.d: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs

/root/repo/target/debug/deps/ahq_ctrl-ea39348014c5b023: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs

crates/ahq-ctrl/src/lib.rs:
crates/ahq-ctrl/src/config.rs:
crates/ahq-ctrl/src/global.rs:
