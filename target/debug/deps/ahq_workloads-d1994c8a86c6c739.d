/root/repo/target/debug/deps/ahq_workloads-d1994c8a86c6c739.d: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs

/root/repo/target/debug/deps/libahq_workloads-d1994c8a86c6c739.rlib: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs

/root/repo/target/debug/deps/libahq_workloads-d1994c8a86c6c739.rmeta: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs

crates/ahq-workloads/src/lib.rs:
crates/ahq-workloads/src/load.rs:
crates/ahq-workloads/src/mixes.rs:
crates/ahq-workloads/src/profiles.rs:
crates/ahq-workloads/src/zipf.rs:
