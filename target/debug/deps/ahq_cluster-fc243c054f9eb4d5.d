/root/repo/target/debug/deps/ahq_cluster-fc243c054f9eb4d5.d: crates/ahq-cluster/src/lib.rs crates/ahq-cluster/src/churn.rs crates/ahq-cluster/src/cluster.rs crates/ahq-cluster/src/control.rs crates/ahq-cluster/src/fidelity.rs crates/ahq-cluster/src/placement.rs crates/ahq-cluster/src/report.rs

/root/repo/target/debug/deps/libahq_cluster-fc243c054f9eb4d5.rlib: crates/ahq-cluster/src/lib.rs crates/ahq-cluster/src/churn.rs crates/ahq-cluster/src/cluster.rs crates/ahq-cluster/src/control.rs crates/ahq-cluster/src/fidelity.rs crates/ahq-cluster/src/placement.rs crates/ahq-cluster/src/report.rs

/root/repo/target/debug/deps/libahq_cluster-fc243c054f9eb4d5.rmeta: crates/ahq-cluster/src/lib.rs crates/ahq-cluster/src/churn.rs crates/ahq-cluster/src/cluster.rs crates/ahq-cluster/src/control.rs crates/ahq-cluster/src/fidelity.rs crates/ahq-cluster/src/placement.rs crates/ahq-cluster/src/report.rs

crates/ahq-cluster/src/lib.rs:
crates/ahq-cluster/src/churn.rs:
crates/ahq-cluster/src/cluster.rs:
crates/ahq-cluster/src/control.rs:
crates/ahq-cluster/src/fidelity.rs:
crates/ahq-cluster/src/placement.rs:
crates/ahq-cluster/src/report.rs:
