/root/repo/target/debug/deps/surrogate-b6952596a253ff77.d: crates/ahq-experiments/../../tests/surrogate.rs

/root/repo/target/debug/deps/surrogate-b6952596a253ff77: crates/ahq-experiments/../../tests/surrogate.rs

crates/ahq-experiments/../../tests/surrogate.rs:
