/root/repo/target/debug/deps/paper_shapes-e325c179b7d9a894.d: crates/ahq-experiments/../../tests/paper_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_shapes-e325c179b7d9a894.rmeta: crates/ahq-experiments/../../tests/paper_shapes.rs Cargo.toml

crates/ahq-experiments/../../tests/paper_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
