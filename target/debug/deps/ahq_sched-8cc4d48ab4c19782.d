/root/repo/target/debug/deps/ahq_sched-8cc4d48ab4c19782.d: crates/ahq-sched/src/lib.rs crates/ahq-sched/src/arq.rs crates/ahq-sched/src/clite.rs crates/ahq-sched/src/heracles.rs crates/ahq-sched/src/lcfirst.rs crates/ahq-sched/src/observe.rs crates/ahq-sched/src/parties.rs crates/ahq-sched/src/rollback.rs crates/ahq-sched/src/runner.rs crates/ahq-sched/src/unmanaged.rs Cargo.toml

/root/repo/target/debug/deps/libahq_sched-8cc4d48ab4c19782.rmeta: crates/ahq-sched/src/lib.rs crates/ahq-sched/src/arq.rs crates/ahq-sched/src/clite.rs crates/ahq-sched/src/heracles.rs crates/ahq-sched/src/lcfirst.rs crates/ahq-sched/src/observe.rs crates/ahq-sched/src/parties.rs crates/ahq-sched/src/rollback.rs crates/ahq-sched/src/runner.rs crates/ahq-sched/src/unmanaged.rs Cargo.toml

crates/ahq-sched/src/lib.rs:
crates/ahq-sched/src/arq.rs:
crates/ahq-sched/src/clite.rs:
crates/ahq-sched/src/heracles.rs:
crates/ahq-sched/src/lcfirst.rs:
crates/ahq-sched/src/observe.rs:
crates/ahq-sched/src/parties.rs:
crates/ahq-sched/src/rollback.rs:
crates/ahq-sched/src/runner.rs:
crates/ahq-sched/src/unmanaged.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
