/root/repo/target/debug/deps/executor-dd2777a6525ae841.d: crates/ahq-experiments/../../tests/executor.rs Cargo.toml

/root/repo/target/debug/deps/libexecutor-dd2777a6525ae841.rmeta: crates/ahq-experiments/../../tests/executor.rs Cargo.toml

crates/ahq-experiments/../../tests/executor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
