/root/repo/target/debug/deps/pipeline-969ee758a5b51497.d: crates/ahq-experiments/../../tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-969ee758a5b51497.rmeta: crates/ahq-experiments/../../tests/pipeline.rs Cargo.toml

crates/ahq-experiments/../../tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
