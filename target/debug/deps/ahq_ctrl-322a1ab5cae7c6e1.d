/root/repo/target/debug/deps/ahq_ctrl-322a1ab5cae7c6e1.d: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs

/root/repo/target/debug/deps/libahq_ctrl-322a1ab5cae7c6e1.rlib: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs

/root/repo/target/debug/deps/libahq_ctrl-322a1ab5cae7c6e1.rmeta: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs

crates/ahq-ctrl/src/lib.rs:
crates/ahq-ctrl/src/config.rs:
crates/ahq-ctrl/src/global.rs:
