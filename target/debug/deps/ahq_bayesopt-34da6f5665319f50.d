/root/repo/target/debug/deps/ahq_bayesopt-34da6f5665319f50.d: crates/ahq-bayesopt/src/lib.rs crates/ahq-bayesopt/src/acquisition.rs crates/ahq-bayesopt/src/gp.rs crates/ahq-bayesopt/src/kernel.rs crates/ahq-bayesopt/src/linalg.rs crates/ahq-bayesopt/src/online.rs crates/ahq-bayesopt/src/optimizer.rs

/root/repo/target/debug/deps/libahq_bayesopt-34da6f5665319f50.rlib: crates/ahq-bayesopt/src/lib.rs crates/ahq-bayesopt/src/acquisition.rs crates/ahq-bayesopt/src/gp.rs crates/ahq-bayesopt/src/kernel.rs crates/ahq-bayesopt/src/linalg.rs crates/ahq-bayesopt/src/online.rs crates/ahq-bayesopt/src/optimizer.rs

/root/repo/target/debug/deps/libahq_bayesopt-34da6f5665319f50.rmeta: crates/ahq-bayesopt/src/lib.rs crates/ahq-bayesopt/src/acquisition.rs crates/ahq-bayesopt/src/gp.rs crates/ahq-bayesopt/src/kernel.rs crates/ahq-bayesopt/src/linalg.rs crates/ahq-bayesopt/src/online.rs crates/ahq-bayesopt/src/optimizer.rs

crates/ahq-bayesopt/src/lib.rs:
crates/ahq-bayesopt/src/acquisition.rs:
crates/ahq-bayesopt/src/gp.rs:
crates/ahq-bayesopt/src/kernel.rs:
crates/ahq-bayesopt/src/linalg.rs:
crates/ahq-bayesopt/src/online.rs:
crates/ahq-bayesopt/src/optimizer.rs:
