/root/repo/target/debug/deps/pipeline-560c1048da68db75.d: crates/ahq-experiments/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-560c1048da68db75: crates/ahq-experiments/../../tests/pipeline.rs

crates/ahq-experiments/../../tests/pipeline.rs:
