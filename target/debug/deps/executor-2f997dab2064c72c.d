/root/repo/target/debug/deps/executor-2f997dab2064c72c.d: crates/bench/benches/executor.rs Cargo.toml

/root/repo/target/debug/deps/libexecutor-2f997dab2064c72c.rmeta: crates/bench/benches/executor.rs Cargo.toml

crates/bench/benches/executor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
