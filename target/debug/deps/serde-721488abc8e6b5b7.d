/root/repo/target/debug/deps/serde-721488abc8e6b5b7.d: /tmp/ahq-verify/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-721488abc8e6b5b7.rlib: /tmp/ahq-verify/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-721488abc8e6b5b7.rmeta: /tmp/ahq-verify/stubs/serde/src/lib.rs

/tmp/ahq-verify/stubs/serde/src/lib.rs:
