/root/repo/target/debug/deps/criterion-c3a69cffc15c5061.d: /tmp/ahq-verify/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-c3a69cffc15c5061.rmeta: /tmp/ahq-verify/stubs/criterion/src/lib.rs

/tmp/ahq-verify/stubs/criterion/src/lib.rs:
