/root/repo/target/debug/deps/perf_smoke-4d417af6e399241c.d: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json Cargo.toml

/root/repo/target/debug/deps/libperf_smoke-4d417af6e399241c.rmeta: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json Cargo.toml

crates/bench/src/bin/perf_smoke.rs:
crates/bench/src/bin/../../BENCH_node.json:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
