/root/repo/target/debug/deps/pipeline-9c0eb79c6ee01469.d: crates/ahq-experiments/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-9c0eb79c6ee01469: crates/ahq-experiments/../../tests/pipeline.rs

crates/ahq-experiments/../../tests/pipeline.rs:
