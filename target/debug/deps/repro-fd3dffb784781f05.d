/root/repo/target/debug/deps/repro-fd3dffb784781f05.d: crates/ahq-experiments/src/bin/repro.rs

/root/repo/target/debug/deps/repro-fd3dffb784781f05: crates/ahq-experiments/src/bin/repro.rs

crates/ahq-experiments/src/bin/repro.rs:
