/root/repo/target/debug/deps/gctrl-d3f07b234ea97f2e.d: crates/ahq-experiments/../../tests/gctrl.rs Cargo.toml

/root/repo/target/debug/deps/libgctrl-d3f07b234ea97f2e.rmeta: crates/ahq-experiments/../../tests/gctrl.rs Cargo.toml

crates/ahq-experiments/../../tests/gctrl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
