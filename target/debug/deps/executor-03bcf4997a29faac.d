/root/repo/target/debug/deps/executor-03bcf4997a29faac.d: crates/bench/benches/executor.rs

/root/repo/target/debug/deps/executor-03bcf4997a29faac: crates/bench/benches/executor.rs

crates/bench/benches/executor.rs:
