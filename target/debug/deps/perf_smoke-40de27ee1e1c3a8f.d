/root/repo/target/debug/deps/perf_smoke-40de27ee1e1c3a8f.d: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json

/root/repo/target/debug/deps/perf_smoke-40de27ee1e1c3a8f: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json

crates/bench/src/bin/perf_smoke.rs:
crates/bench/src/bin/../../BENCH_node.json:
