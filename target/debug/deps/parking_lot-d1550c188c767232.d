/root/repo/target/debug/deps/parking_lot-d1550c188c767232.d: /tmp/ahq-verify/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-d1550c188c767232.rmeta: /tmp/ahq-verify/stubs/parking_lot/src/lib.rs

/tmp/ahq-verify/stubs/parking_lot/src/lib.rs:
