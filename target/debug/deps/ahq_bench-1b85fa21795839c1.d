/root/repo/target/debug/deps/ahq_bench-1b85fa21795839c1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libahq_bench-1b85fa21795839c1.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libahq_bench-1b85fa21795839c1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
