/root/repo/target/debug/deps/proptest-502d3914048f7efb.d: /tmp/ahq-verify/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-502d3914048f7efb.rmeta: /tmp/ahq-verify/stubs/proptest/src/lib.rs

/tmp/ahq-verify/stubs/proptest/src/lib.rs:
