/root/repo/target/debug/deps/paper_shapes-256e7412ba4b1143.d: crates/ahq-experiments/../../tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-256e7412ba4b1143: crates/ahq-experiments/../../tests/paper_shapes.rs

crates/ahq-experiments/../../tests/paper_shapes.rs:
