/root/repo/target/debug/deps/simulator-77bfa876802290af.d: crates/bench/benches/simulator.rs

/root/repo/target/debug/deps/simulator-77bfa876802290af: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
