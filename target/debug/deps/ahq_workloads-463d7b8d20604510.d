/root/repo/target/debug/deps/ahq_workloads-463d7b8d20604510.d: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs

/root/repo/target/debug/deps/ahq_workloads-463d7b8d20604510: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs

crates/ahq-workloads/src/lib.rs:
crates/ahq-workloads/src/load.rs:
crates/ahq-workloads/src/mixes.rs:
crates/ahq-workloads/src/profiles.rs:
crates/ahq-workloads/src/zipf.rs:
