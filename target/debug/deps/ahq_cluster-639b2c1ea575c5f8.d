/root/repo/target/debug/deps/ahq_cluster-639b2c1ea575c5f8.d: crates/ahq-cluster/src/lib.rs crates/ahq-cluster/src/churn.rs crates/ahq-cluster/src/cluster.rs crates/ahq-cluster/src/control.rs crates/ahq-cluster/src/fidelity.rs crates/ahq-cluster/src/placement.rs crates/ahq-cluster/src/report.rs

/root/repo/target/debug/deps/ahq_cluster-639b2c1ea575c5f8: crates/ahq-cluster/src/lib.rs crates/ahq-cluster/src/churn.rs crates/ahq-cluster/src/cluster.rs crates/ahq-cluster/src/control.rs crates/ahq-cluster/src/fidelity.rs crates/ahq-cluster/src/placement.rs crates/ahq-cluster/src/report.rs

crates/ahq-cluster/src/lib.rs:
crates/ahq-cluster/src/churn.rs:
crates/ahq-cluster/src/cluster.rs:
crates/ahq-cluster/src/control.rs:
crates/ahq-cluster/src/fidelity.rs:
crates/ahq-cluster/src/placement.rs:
crates/ahq-cluster/src/report.rs:
