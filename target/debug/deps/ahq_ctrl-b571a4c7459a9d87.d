/root/repo/target/debug/deps/ahq_ctrl-b571a4c7459a9d87.d: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs Cargo.toml

/root/repo/target/debug/deps/libahq_ctrl-b571a4c7459a9d87.rmeta: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs Cargo.toml

crates/ahq-ctrl/src/lib.rs:
crates/ahq-ctrl/src/config.rs:
crates/ahq-ctrl/src/global.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
