/root/repo/target/debug/deps/repro-a8fc16d6c9f771c2.d: crates/ahq-experiments/src/bin/repro.rs

/root/repo/target/debug/deps/repro-a8fc16d6c9f771c2: crates/ahq-experiments/src/bin/repro.rs

crates/ahq-experiments/src/bin/repro.rs:
