/root/repo/target/debug/deps/ahq_bayesopt-ee9cc32eee89b1cf.d: crates/ahq-bayesopt/src/lib.rs crates/ahq-bayesopt/src/acquisition.rs crates/ahq-bayesopt/src/gp.rs crates/ahq-bayesopt/src/kernel.rs crates/ahq-bayesopt/src/linalg.rs crates/ahq-bayesopt/src/online.rs crates/ahq-bayesopt/src/optimizer.rs

/root/repo/target/debug/deps/ahq_bayesopt-ee9cc32eee89b1cf: crates/ahq-bayesopt/src/lib.rs crates/ahq-bayesopt/src/acquisition.rs crates/ahq-bayesopt/src/gp.rs crates/ahq-bayesopt/src/kernel.rs crates/ahq-bayesopt/src/linalg.rs crates/ahq-bayesopt/src/online.rs crates/ahq-bayesopt/src/optimizer.rs

crates/ahq-bayesopt/src/lib.rs:
crates/ahq-bayesopt/src/acquisition.rs:
crates/ahq-bayesopt/src/gp.rs:
crates/ahq-bayesopt/src/kernel.rs:
crates/ahq-bayesopt/src/linalg.rs:
crates/ahq-bayesopt/src/online.rs:
crates/ahq-bayesopt/src/optimizer.rs:
