/root/repo/target/debug/deps/pipeline-dcd4201d41fce562.d: crates/ahq-experiments/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-dcd4201d41fce562: crates/ahq-experiments/../../tests/pipeline.rs

crates/ahq-experiments/../../tests/pipeline.rs:
