/root/repo/target/debug/deps/repro-15fd2ceffb6959f4.d: crates/ahq-experiments/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-15fd2ceffb6959f4.rmeta: crates/ahq-experiments/src/bin/repro.rs Cargo.toml

crates/ahq-experiments/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
