/root/repo/target/debug/deps/perf_smoke-f881ef0ff8b5f024.d: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json

/root/repo/target/debug/deps/perf_smoke-f881ef0ff8b5f024: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json

crates/bench/src/bin/perf_smoke.rs:
crates/bench/src/bin/../../BENCH_node.json:
