/root/repo/target/debug/deps/repro-069bfd3f4a1527df.d: crates/ahq-experiments/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-069bfd3f4a1527df.rmeta: crates/ahq-experiments/src/bin/repro.rs Cargo.toml

crates/ahq-experiments/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
