/root/repo/target/debug/deps/gctrl-ee68698d10414770.d: crates/ahq-experiments/../../tests/gctrl.rs Cargo.toml

/root/repo/target/debug/deps/libgctrl-ee68698d10414770.rmeta: crates/ahq-experiments/../../tests/gctrl.rs Cargo.toml

crates/ahq-experiments/../../tests/gctrl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
