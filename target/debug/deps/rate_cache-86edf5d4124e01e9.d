/root/repo/target/debug/deps/rate_cache-86edf5d4124e01e9.d: crates/ahq-sim/tests/rate_cache.rs Cargo.toml

/root/repo/target/debug/deps/librate_cache-86edf5d4124e01e9.rmeta: crates/ahq-sim/tests/rate_cache.rs Cargo.toml

crates/ahq-sim/tests/rate_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
