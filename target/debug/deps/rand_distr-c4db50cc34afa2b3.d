/root/repo/target/debug/deps/rand_distr-c4db50cc34afa2b3.d: /tmp/ahq-verify/stubs/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-c4db50cc34afa2b3.rmeta: /tmp/ahq-verify/stubs/rand_distr/src/lib.rs

/tmp/ahq-verify/stubs/rand_distr/src/lib.rs:
