/root/repo/target/debug/deps/serde_derive-89f07c0a44d389b5.d: /tmp/ahq-verify/stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-89f07c0a44d389b5.so: /tmp/ahq-verify/stubs/serde_derive/src/lib.rs

/tmp/ahq-verify/stubs/serde_derive/src/lib.rs:
