/root/repo/target/debug/deps/event_path-9c92adf5b0a9f4f9.d: crates/ahq-sim/tests/event_path.rs Cargo.toml

/root/repo/target/debug/deps/libevent_path-9c92adf5b0a9f4f9.rmeta: crates/ahq-sim/tests/event_path.rs Cargo.toml

crates/ahq-sim/tests/event_path.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/ahq-sim
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
