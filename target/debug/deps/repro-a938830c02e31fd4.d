/root/repo/target/debug/deps/repro-a938830c02e31fd4.d: crates/ahq-experiments/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-a938830c02e31fd4.rmeta: crates/ahq-experiments/src/bin/repro.rs Cargo.toml

crates/ahq-experiments/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
