/root/repo/target/debug/deps/ahq_ctrl-c7b6fa37f207d785.d: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs

/root/repo/target/debug/deps/libahq_ctrl-c7b6fa37f207d785.rlib: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs

/root/repo/target/debug/deps/libahq_ctrl-c7b6fa37f207d785.rmeta: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs

crates/ahq-ctrl/src/lib.rs:
crates/ahq-ctrl/src/config.rs:
crates/ahq-ctrl/src/global.rs:
