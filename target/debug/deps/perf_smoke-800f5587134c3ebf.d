/root/repo/target/debug/deps/perf_smoke-800f5587134c3ebf.d: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json

/root/repo/target/debug/deps/perf_smoke-800f5587134c3ebf: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json

crates/bench/src/bin/perf_smoke.rs:
crates/bench/src/bin/../../BENCH_node.json:
