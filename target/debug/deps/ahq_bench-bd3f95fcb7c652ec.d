/root/repo/target/debug/deps/ahq_bench-bd3f95fcb7c652ec.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ahq_bench-bd3f95fcb7c652ec: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
