/root/repo/target/debug/deps/ahq_ctrl-52fd5f1d2e5dc3cf.d: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs Cargo.toml

/root/repo/target/debug/deps/libahq_ctrl-52fd5f1d2e5dc3cf.rmeta: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs Cargo.toml

crates/ahq-ctrl/src/lib.rs:
crates/ahq-ctrl/src/config.rs:
crates/ahq-ctrl/src/global.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
