/root/repo/target/debug/deps/ahq_train-b109703dfffdff93.d: crates/ahq-train/src/lib.rs crates/ahq-train/src/artifact.rs crates/ahq-train/src/evaluate.rs crates/ahq-train/src/genome.rs crates/ahq-train/src/portfolio.rs crates/ahq-train/src/trainer.rs Cargo.toml

/root/repo/target/debug/deps/libahq_train-b109703dfffdff93.rmeta: crates/ahq-train/src/lib.rs crates/ahq-train/src/artifact.rs crates/ahq-train/src/evaluate.rs crates/ahq-train/src/genome.rs crates/ahq-train/src/portfolio.rs crates/ahq-train/src/trainer.rs Cargo.toml

crates/ahq-train/src/lib.rs:
crates/ahq-train/src/artifact.rs:
crates/ahq-train/src/evaluate.rs:
crates/ahq-train/src/genome.rs:
crates/ahq-train/src/portfolio.rs:
crates/ahq-train/src/trainer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
