/root/repo/target/debug/deps/ahq_workloads-afcf1f958993c344.d: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libahq_workloads-afcf1f958993c344.rmeta: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs Cargo.toml

crates/ahq-workloads/src/lib.rs:
crates/ahq-workloads/src/load.rs:
crates/ahq-workloads/src/mixes.rs:
crates/ahq-workloads/src/profiles.rs:
crates/ahq-workloads/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
