/root/repo/target/debug/deps/ahq_core-667937b74bb65c7b.d: crates/ahq-core/src/lib.rs crates/ahq-core/src/entropy.rs crates/ahq-core/src/equivalence.rs crates/ahq-core/src/error.rs crates/ahq-core/src/json.rs crates/ahq-core/src/measurement.rs crates/ahq-core/src/seed.rs crates/ahq-core/src/series.rs crates/ahq-core/src/weighted.rs Cargo.toml

/root/repo/target/debug/deps/libahq_core-667937b74bb65c7b.rmeta: crates/ahq-core/src/lib.rs crates/ahq-core/src/entropy.rs crates/ahq-core/src/equivalence.rs crates/ahq-core/src/error.rs crates/ahq-core/src/json.rs crates/ahq-core/src/measurement.rs crates/ahq-core/src/seed.rs crates/ahq-core/src/series.rs crates/ahq-core/src/weighted.rs Cargo.toml

crates/ahq-core/src/lib.rs:
crates/ahq-core/src/entropy.rs:
crates/ahq-core/src/equivalence.rs:
crates/ahq-core/src/error.rs:
crates/ahq-core/src/json.rs:
crates/ahq-core/src/measurement.rs:
crates/ahq-core/src/seed.rs:
crates/ahq-core/src/series.rs:
crates/ahq-core/src/weighted.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
