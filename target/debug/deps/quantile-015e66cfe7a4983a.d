/root/repo/target/debug/deps/quantile-015e66cfe7a4983a.d: crates/bench/benches/quantile.rs Cargo.toml

/root/repo/target/debug/deps/libquantile-015e66cfe7a4983a.rmeta: crates/bench/benches/quantile.rs Cargo.toml

crates/bench/benches/quantile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
