/root/repo/target/debug/deps/ahq_bench-47f5bf8ae835b201.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libahq_bench-47f5bf8ae835b201.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libahq_bench-47f5bf8ae835b201.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
