/root/repo/target/debug/deps/ctrl-dd5ea4beb0b259fa.d: crates/bench/benches/ctrl.rs Cargo.toml

/root/repo/target/debug/deps/libctrl-dd5ea4beb0b259fa.rmeta: crates/bench/benches/ctrl.rs Cargo.toml

crates/bench/benches/ctrl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
