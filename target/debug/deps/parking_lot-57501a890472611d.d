/root/repo/target/debug/deps/parking_lot-57501a890472611d.d: /tmp/ahq-verify/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-57501a890472611d.rlib: /tmp/ahq-verify/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-57501a890472611d.rmeta: /tmp/ahq-verify/stubs/parking_lot/src/lib.rs

/tmp/ahq-verify/stubs/parking_lot/src/lib.rs:
