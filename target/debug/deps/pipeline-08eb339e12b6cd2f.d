/root/repo/target/debug/deps/pipeline-08eb339e12b6cd2f.d: crates/ahq-experiments/../../tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-08eb339e12b6cd2f.rmeta: crates/ahq-experiments/../../tests/pipeline.rs Cargo.toml

crates/ahq-experiments/../../tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
