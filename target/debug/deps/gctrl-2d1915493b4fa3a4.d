/root/repo/target/debug/deps/gctrl-2d1915493b4fa3a4.d: crates/ahq-experiments/../../tests/gctrl.rs

/root/repo/target/debug/deps/gctrl-2d1915493b4fa3a4: crates/ahq-experiments/../../tests/gctrl.rs

crates/ahq-experiments/../../tests/gctrl.rs:
