/root/repo/target/debug/deps/ahq_bench-e821a2607e153974.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libahq_bench-e821a2607e153974.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
