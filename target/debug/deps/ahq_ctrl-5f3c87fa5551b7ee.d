/root/repo/target/debug/deps/ahq_ctrl-5f3c87fa5551b7ee.d: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs Cargo.toml

/root/repo/target/debug/deps/libahq_ctrl-5f3c87fa5551b7ee.rmeta: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs Cargo.toml

crates/ahq-ctrl/src/lib.rs:
crates/ahq-ctrl/src/config.rs:
crates/ahq-ctrl/src/global.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
