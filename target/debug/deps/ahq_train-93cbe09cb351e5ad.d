/root/repo/target/debug/deps/ahq_train-93cbe09cb351e5ad.d: crates/ahq-train/src/lib.rs crates/ahq-train/src/artifact.rs crates/ahq-train/src/evaluate.rs crates/ahq-train/src/genome.rs crates/ahq-train/src/portfolio.rs crates/ahq-train/src/trainer.rs

/root/repo/target/debug/deps/ahq_train-93cbe09cb351e5ad: crates/ahq-train/src/lib.rs crates/ahq-train/src/artifact.rs crates/ahq-train/src/evaluate.rs crates/ahq-train/src/genome.rs crates/ahq-train/src/portfolio.rs crates/ahq-train/src/trainer.rs

crates/ahq-train/src/lib.rs:
crates/ahq-train/src/artifact.rs:
crates/ahq-train/src/evaluate.rs:
crates/ahq-train/src/genome.rs:
crates/ahq-train/src/portfolio.rs:
crates/ahq-train/src/trainer.rs:
