/root/repo/target/debug/deps/ahq_bench-4d732b23a1943e49.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libahq_bench-4d732b23a1943e49.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
