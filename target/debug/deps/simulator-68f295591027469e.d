/root/repo/target/debug/deps/simulator-68f295591027469e.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-68f295591027469e.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
