/root/repo/target/debug/deps/ahq_sched-f103c692eb133f03.d: crates/ahq-sched/src/lib.rs crates/ahq-sched/src/arq.rs crates/ahq-sched/src/clite.rs crates/ahq-sched/src/heracles.rs crates/ahq-sched/src/lcfirst.rs crates/ahq-sched/src/observe.rs crates/ahq-sched/src/parties.rs crates/ahq-sched/src/rollback.rs crates/ahq-sched/src/runner.rs crates/ahq-sched/src/unmanaged.rs

/root/repo/target/debug/deps/ahq_sched-f103c692eb133f03: crates/ahq-sched/src/lib.rs crates/ahq-sched/src/arq.rs crates/ahq-sched/src/clite.rs crates/ahq-sched/src/heracles.rs crates/ahq-sched/src/lcfirst.rs crates/ahq-sched/src/observe.rs crates/ahq-sched/src/parties.rs crates/ahq-sched/src/rollback.rs crates/ahq-sched/src/runner.rs crates/ahq-sched/src/unmanaged.rs

crates/ahq-sched/src/lib.rs:
crates/ahq-sched/src/arq.rs:
crates/ahq-sched/src/clite.rs:
crates/ahq-sched/src/heracles.rs:
crates/ahq-sched/src/lcfirst.rs:
crates/ahq-sched/src/observe.rs:
crates/ahq-sched/src/parties.rs:
crates/ahq-sched/src/rollback.rs:
crates/ahq-sched/src/runner.rs:
crates/ahq-sched/src/unmanaged.rs:
