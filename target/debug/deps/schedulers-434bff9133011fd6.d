/root/repo/target/debug/deps/schedulers-434bff9133011fd6.d: crates/bench/benches/schedulers.rs

/root/repo/target/debug/deps/schedulers-434bff9133011fd6: crates/bench/benches/schedulers.rs

crates/bench/benches/schedulers.rs:
