/root/repo/target/debug/deps/ahq_workloads-8fbbdefb5103172e.d: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs

/root/repo/target/debug/deps/ahq_workloads-8fbbdefb5103172e: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs

crates/ahq-workloads/src/lib.rs:
crates/ahq-workloads/src/load.rs:
crates/ahq-workloads/src/mixes.rs:
crates/ahq-workloads/src/profiles.rs:
crates/ahq-workloads/src/zipf.rs:
