/root/repo/target/debug/deps/properties-4e3ab603b19278d8.d: crates/ahq-core/tests/properties.rs

/root/repo/target/debug/deps/properties-4e3ab603b19278d8: crates/ahq-core/tests/properties.rs

crates/ahq-core/tests/properties.rs:
