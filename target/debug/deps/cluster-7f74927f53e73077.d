/root/repo/target/debug/deps/cluster-7f74927f53e73077.d: crates/bench/benches/cluster.rs Cargo.toml

/root/repo/target/debug/deps/libcluster-7f74927f53e73077.rmeta: crates/bench/benches/cluster.rs Cargo.toml

crates/bench/benches/cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
