/root/repo/target/debug/deps/node-1d3ac2a3e0eb6965.d: crates/bench/benches/node.rs Cargo.toml

/root/repo/target/debug/deps/libnode-1d3ac2a3e0eb6965.rmeta: crates/bench/benches/node.rs Cargo.toml

crates/bench/benches/node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
