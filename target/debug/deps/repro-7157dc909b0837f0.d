/root/repo/target/debug/deps/repro-7157dc909b0837f0.d: crates/ahq-experiments/src/bin/repro.rs

/root/repo/target/debug/deps/repro-7157dc909b0837f0: crates/ahq-experiments/src/bin/repro.rs

crates/ahq-experiments/src/bin/repro.rs:
