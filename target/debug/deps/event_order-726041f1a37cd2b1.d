/root/repo/target/debug/deps/event_order-726041f1a37cd2b1.d: crates/ahq-sim/tests/event_order.rs Cargo.toml

/root/repo/target/debug/deps/libevent_order-726041f1a37cd2b1.rmeta: crates/ahq-sim/tests/event_order.rs Cargo.toml

crates/ahq-sim/tests/event_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
