/root/repo/target/debug/deps/node-4371f90eb821d9cd.d: crates/bench/benches/node.rs

/root/repo/target/debug/deps/node-4371f90eb821d9cd: crates/bench/benches/node.rs

crates/bench/benches/node.rs:
