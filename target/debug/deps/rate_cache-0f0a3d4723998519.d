/root/repo/target/debug/deps/rate_cache-0f0a3d4723998519.d: crates/ahq-sim/tests/rate_cache.rs

/root/repo/target/debug/deps/rate_cache-0f0a3d4723998519: crates/ahq-sim/tests/rate_cache.rs

crates/ahq-sim/tests/rate_cache.rs:
