/root/repo/target/debug/deps/ahq_cluster-a5ecb84a1cefe6a3.d: crates/ahq-cluster/src/lib.rs crates/ahq-cluster/src/churn.rs crates/ahq-cluster/src/cluster.rs crates/ahq-cluster/src/control.rs crates/ahq-cluster/src/fidelity.rs crates/ahq-cluster/src/placement.rs crates/ahq-cluster/src/report.rs

/root/repo/target/debug/deps/libahq_cluster-a5ecb84a1cefe6a3.rlib: crates/ahq-cluster/src/lib.rs crates/ahq-cluster/src/churn.rs crates/ahq-cluster/src/cluster.rs crates/ahq-cluster/src/control.rs crates/ahq-cluster/src/fidelity.rs crates/ahq-cluster/src/placement.rs crates/ahq-cluster/src/report.rs

/root/repo/target/debug/deps/libahq_cluster-a5ecb84a1cefe6a3.rmeta: crates/ahq-cluster/src/lib.rs crates/ahq-cluster/src/churn.rs crates/ahq-cluster/src/cluster.rs crates/ahq-cluster/src/control.rs crates/ahq-cluster/src/fidelity.rs crates/ahq-cluster/src/placement.rs crates/ahq-cluster/src/report.rs

crates/ahq-cluster/src/lib.rs:
crates/ahq-cluster/src/churn.rs:
crates/ahq-cluster/src/cluster.rs:
crates/ahq-cluster/src/control.rs:
crates/ahq-cluster/src/fidelity.rs:
crates/ahq-cluster/src/placement.rs:
crates/ahq-cluster/src/report.rs:
