/root/repo/target/debug/deps/rand-b18a85a6126bf5e6.d: /tmp/ahq-verify/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b18a85a6126bf5e6.rlib: /tmp/ahq-verify/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b18a85a6126bf5e6.rmeta: /tmp/ahq-verify/stubs/rand/src/lib.rs

/tmp/ahq-verify/stubs/rand/src/lib.rs:
