/root/repo/target/debug/deps/surrogate-e94a7e0906f1b5eb.d: crates/ahq-experiments/../../tests/surrogate.rs Cargo.toml

/root/repo/target/debug/deps/libsurrogate-e94a7e0906f1b5eb.rmeta: crates/ahq-experiments/../../tests/surrogate.rs Cargo.toml

crates/ahq-experiments/../../tests/surrogate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
