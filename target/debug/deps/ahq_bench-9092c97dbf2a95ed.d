/root/repo/target/debug/deps/ahq_bench-9092c97dbf2a95ed.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ahq_bench-9092c97dbf2a95ed: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
