/root/repo/target/debug/deps/ahq_cluster-aa22d3ad3f5eed0f.d: crates/ahq-cluster/src/lib.rs crates/ahq-cluster/src/churn.rs crates/ahq-cluster/src/cluster.rs crates/ahq-cluster/src/control.rs crates/ahq-cluster/src/fidelity.rs crates/ahq-cluster/src/placement.rs crates/ahq-cluster/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libahq_cluster-aa22d3ad3f5eed0f.rmeta: crates/ahq-cluster/src/lib.rs crates/ahq-cluster/src/churn.rs crates/ahq-cluster/src/cluster.rs crates/ahq-cluster/src/control.rs crates/ahq-cluster/src/fidelity.rs crates/ahq-cluster/src/placement.rs crates/ahq-cluster/src/report.rs Cargo.toml

crates/ahq-cluster/src/lib.rs:
crates/ahq-cluster/src/churn.rs:
crates/ahq-cluster/src/cluster.rs:
crates/ahq-cluster/src/control.rs:
crates/ahq-cluster/src/fidelity.rs:
crates/ahq-cluster/src/placement.rs:
crates/ahq-cluster/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
