/root/repo/target/debug/deps/executor-5b45ad65804ad1d7.d: crates/ahq-experiments/../../tests/executor.rs

/root/repo/target/debug/deps/executor-5b45ad65804ad1d7: crates/ahq-experiments/../../tests/executor.rs

crates/ahq-experiments/../../tests/executor.rs:
