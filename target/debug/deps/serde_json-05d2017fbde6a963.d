/root/repo/target/debug/deps/serde_json-05d2017fbde6a963.d: /tmp/ahq-verify/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-05d2017fbde6a963.rlib: /tmp/ahq-verify/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-05d2017fbde6a963.rmeta: /tmp/ahq-verify/stubs/serde_json/src/lib.rs

/tmp/ahq-verify/stubs/serde_json/src/lib.rs:
