/root/repo/target/debug/deps/rand_distr-2065662882bc92b9.d: /tmp/ahq-verify/stubs/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-2065662882bc92b9.rlib: /tmp/ahq-verify/stubs/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-2065662882bc92b9.rmeta: /tmp/ahq-verify/stubs/rand_distr/src/lib.rs

/tmp/ahq-verify/stubs/rand_distr/src/lib.rs:
