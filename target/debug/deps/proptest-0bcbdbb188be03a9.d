/root/repo/target/debug/deps/proptest-0bcbdbb188be03a9.d: /tmp/ahq-verify/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0bcbdbb188be03a9.rlib: /tmp/ahq-verify/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0bcbdbb188be03a9.rmeta: /tmp/ahq-verify/stubs/proptest/src/lib.rs

/tmp/ahq-verify/stubs/proptest/src/lib.rs:
