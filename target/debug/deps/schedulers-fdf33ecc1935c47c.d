/root/repo/target/debug/deps/schedulers-fdf33ecc1935c47c.d: crates/bench/benches/schedulers.rs Cargo.toml

/root/repo/target/debug/deps/libschedulers-fdf33ecc1935c47c.rmeta: crates/bench/benches/schedulers.rs Cargo.toml

crates/bench/benches/schedulers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
