/root/repo/target/debug/deps/quantile-52c4497903e25525.d: crates/bench/benches/quantile.rs

/root/repo/target/debug/deps/quantile-52c4497903e25525: crates/bench/benches/quantile.rs

crates/bench/benches/quantile.rs:
