/root/repo/target/debug/deps/figures-0a7c9962e1e9e32b.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/figures-0a7c9962e1e9e32b: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
