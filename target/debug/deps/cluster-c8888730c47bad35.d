/root/repo/target/debug/deps/cluster-c8888730c47bad35.d: crates/ahq-experiments/../../tests/cluster.rs Cargo.toml

/root/repo/target/debug/deps/libcluster-c8888730c47bad35.rmeta: crates/ahq-experiments/../../tests/cluster.rs Cargo.toml

crates/ahq-experiments/../../tests/cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
