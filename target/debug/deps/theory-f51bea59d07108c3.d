/root/repo/target/debug/deps/theory-f51bea59d07108c3.d: crates/bench/benches/theory.rs Cargo.toml

/root/repo/target/debug/deps/libtheory-f51bea59d07108c3.rmeta: crates/bench/benches/theory.rs Cargo.toml

crates/bench/benches/theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
