/root/repo/target/debug/deps/ahq_experiments-2922da403cff2aad.d: crates/ahq-experiments/src/lib.rs crates/ahq-experiments/src/ablations.rs crates/ahq-experiments/src/baselines.rs crates/ahq-experiments/src/cluster.rs crates/ahq-experiments/src/error.rs crates/ahq-experiments/src/exec.rs crates/ahq-experiments/src/fig1.rs crates/ahq-experiments/src/fig10.rs crates/ahq-experiments/src/fig11.rs crates/ahq-experiments/src/fig12.rs crates/ahq-experiments/src/fig13.rs crates/ahq-experiments/src/fig2.rs crates/ahq-experiments/src/fig3.rs crates/ahq-experiments/src/fig4.rs crates/ahq-experiments/src/fig56.rs crates/ahq-experiments/src/fig7.rs crates/ahq-experiments/src/fig8.rs crates/ahq-experiments/src/fig9.rs crates/ahq-experiments/src/gctrl.rs crates/ahq-experiments/src/headline.rs crates/ahq-experiments/src/membw.rs crates/ahq-experiments/src/report.rs crates/ahq-experiments/src/runs.rs crates/ahq-experiments/src/strategy.rs crates/ahq-experiments/src/table2.rs crates/ahq-experiments/src/table4.rs crates/ahq-experiments/src/train.rs Cargo.toml

/root/repo/target/debug/deps/libahq_experiments-2922da403cff2aad.rmeta: crates/ahq-experiments/src/lib.rs crates/ahq-experiments/src/ablations.rs crates/ahq-experiments/src/baselines.rs crates/ahq-experiments/src/cluster.rs crates/ahq-experiments/src/error.rs crates/ahq-experiments/src/exec.rs crates/ahq-experiments/src/fig1.rs crates/ahq-experiments/src/fig10.rs crates/ahq-experiments/src/fig11.rs crates/ahq-experiments/src/fig12.rs crates/ahq-experiments/src/fig13.rs crates/ahq-experiments/src/fig2.rs crates/ahq-experiments/src/fig3.rs crates/ahq-experiments/src/fig4.rs crates/ahq-experiments/src/fig56.rs crates/ahq-experiments/src/fig7.rs crates/ahq-experiments/src/fig8.rs crates/ahq-experiments/src/fig9.rs crates/ahq-experiments/src/gctrl.rs crates/ahq-experiments/src/headline.rs crates/ahq-experiments/src/membw.rs crates/ahq-experiments/src/report.rs crates/ahq-experiments/src/runs.rs crates/ahq-experiments/src/strategy.rs crates/ahq-experiments/src/table2.rs crates/ahq-experiments/src/table4.rs crates/ahq-experiments/src/train.rs Cargo.toml

crates/ahq-experiments/src/lib.rs:
crates/ahq-experiments/src/ablations.rs:
crates/ahq-experiments/src/baselines.rs:
crates/ahq-experiments/src/cluster.rs:
crates/ahq-experiments/src/error.rs:
crates/ahq-experiments/src/exec.rs:
crates/ahq-experiments/src/fig1.rs:
crates/ahq-experiments/src/fig10.rs:
crates/ahq-experiments/src/fig11.rs:
crates/ahq-experiments/src/fig12.rs:
crates/ahq-experiments/src/fig13.rs:
crates/ahq-experiments/src/fig2.rs:
crates/ahq-experiments/src/fig3.rs:
crates/ahq-experiments/src/fig4.rs:
crates/ahq-experiments/src/fig56.rs:
crates/ahq-experiments/src/fig7.rs:
crates/ahq-experiments/src/fig8.rs:
crates/ahq-experiments/src/fig9.rs:
crates/ahq-experiments/src/gctrl.rs:
crates/ahq-experiments/src/headline.rs:
crates/ahq-experiments/src/membw.rs:
crates/ahq-experiments/src/report.rs:
crates/ahq-experiments/src/runs.rs:
crates/ahq-experiments/src/strategy.rs:
crates/ahq-experiments/src/table2.rs:
crates/ahq-experiments/src/table4.rs:
crates/ahq-experiments/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
