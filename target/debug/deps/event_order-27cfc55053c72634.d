/root/repo/target/debug/deps/event_order-27cfc55053c72634.d: crates/ahq-sim/tests/event_order.rs

/root/repo/target/debug/deps/event_order-27cfc55053c72634: crates/ahq-sim/tests/event_order.rs

crates/ahq-sim/tests/event_order.rs:
