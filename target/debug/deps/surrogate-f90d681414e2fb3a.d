/root/repo/target/debug/deps/surrogate-f90d681414e2fb3a.d: crates/ahq-experiments/../../tests/surrogate.rs

/root/repo/target/debug/deps/surrogate-f90d681414e2fb3a: crates/ahq-experiments/../../tests/surrogate.rs

crates/ahq-experiments/../../tests/surrogate.rs:
