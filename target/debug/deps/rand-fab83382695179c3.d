/root/repo/target/debug/deps/rand-fab83382695179c3.d: /tmp/ahq-verify/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-fab83382695179c3.rmeta: /tmp/ahq-verify/stubs/rand/src/lib.rs

/tmp/ahq-verify/stubs/rand/src/lib.rs:
