/root/repo/target/debug/deps/pipeline-a67ce07fda58cef1.d: crates/ahq-experiments/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-a67ce07fda58cef1: crates/ahq-experiments/../../tests/pipeline.rs

crates/ahq-experiments/../../tests/pipeline.rs:
