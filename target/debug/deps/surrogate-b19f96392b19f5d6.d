/root/repo/target/debug/deps/surrogate-b19f96392b19f5d6.d: crates/ahq-experiments/../../tests/surrogate.rs

/root/repo/target/debug/deps/surrogate-b19f96392b19f5d6: crates/ahq-experiments/../../tests/surrogate.rs

crates/ahq-experiments/../../tests/surrogate.rs:
