/root/repo/target/debug/deps/node-61c57c1d45c80511.d: crates/bench/benches/node.rs Cargo.toml

/root/repo/target/debug/deps/libnode-61c57c1d45c80511.rmeta: crates/bench/benches/node.rs Cargo.toml

crates/bench/benches/node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
