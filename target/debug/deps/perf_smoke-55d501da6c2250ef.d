/root/repo/target/debug/deps/perf_smoke-55d501da6c2250ef.d: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json Cargo.toml

/root/repo/target/debug/deps/libperf_smoke-55d501da6c2250ef.rmeta: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json Cargo.toml

crates/bench/src/bin/perf_smoke.rs:
crates/bench/src/bin/../../BENCH_node.json:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
