/root/repo/target/debug/deps/properties-b52e6401775ac218.d: crates/ahq-core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-b52e6401775ac218.rmeta: crates/ahq-core/tests/properties.rs Cargo.toml

crates/ahq-core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
