/root/repo/target/debug/deps/gctrl-b332810402d96d34.d: crates/ahq-experiments/../../tests/gctrl.rs

/root/repo/target/debug/deps/gctrl-b332810402d96d34: crates/ahq-experiments/../../tests/gctrl.rs

crates/ahq-experiments/../../tests/gctrl.rs:
