/root/repo/target/debug/deps/ahq_bench-11ff905044e2d127.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libahq_bench-11ff905044e2d127.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
