/root/repo/target/debug/deps/executor-24580d81e35a1aec.d: crates/ahq-experiments/../../tests/executor.rs

/root/repo/target/debug/deps/executor-24580d81e35a1aec: crates/ahq-experiments/../../tests/executor.rs

crates/ahq-experiments/../../tests/executor.rs:
