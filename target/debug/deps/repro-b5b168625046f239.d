/root/repo/target/debug/deps/repro-b5b168625046f239.d: crates/ahq-experiments/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-b5b168625046f239.rmeta: crates/ahq-experiments/src/bin/repro.rs Cargo.toml

crates/ahq-experiments/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
