/root/repo/target/debug/deps/paper_shapes-feaa58ec5441f5dd.d: crates/ahq-experiments/../../tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-feaa58ec5441f5dd: crates/ahq-experiments/../../tests/paper_shapes.rs

crates/ahq-experiments/../../tests/paper_shapes.rs:
