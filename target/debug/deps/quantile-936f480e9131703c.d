/root/repo/target/debug/deps/quantile-936f480e9131703c.d: crates/bench/benches/quantile.rs Cargo.toml

/root/repo/target/debug/deps/libquantile-936f480e9131703c.rmeta: crates/bench/benches/quantile.rs Cargo.toml

crates/bench/benches/quantile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
