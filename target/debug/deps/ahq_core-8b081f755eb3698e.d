/root/repo/target/debug/deps/ahq_core-8b081f755eb3698e.d: crates/ahq-core/src/lib.rs crates/ahq-core/src/entropy.rs crates/ahq-core/src/equivalence.rs crates/ahq-core/src/error.rs crates/ahq-core/src/json.rs crates/ahq-core/src/measurement.rs crates/ahq-core/src/seed.rs crates/ahq-core/src/series.rs crates/ahq-core/src/weighted.rs

/root/repo/target/debug/deps/ahq_core-8b081f755eb3698e: crates/ahq-core/src/lib.rs crates/ahq-core/src/entropy.rs crates/ahq-core/src/equivalence.rs crates/ahq-core/src/error.rs crates/ahq-core/src/json.rs crates/ahq-core/src/measurement.rs crates/ahq-core/src/seed.rs crates/ahq-core/src/series.rs crates/ahq-core/src/weighted.rs

crates/ahq-core/src/lib.rs:
crates/ahq-core/src/entropy.rs:
crates/ahq-core/src/equivalence.rs:
crates/ahq-core/src/error.rs:
crates/ahq-core/src/json.rs:
crates/ahq-core/src/measurement.rs:
crates/ahq-core/src/seed.rs:
crates/ahq-core/src/series.rs:
crates/ahq-core/src/weighted.rs:
