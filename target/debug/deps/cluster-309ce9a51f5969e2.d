/root/repo/target/debug/deps/cluster-309ce9a51f5969e2.d: crates/ahq-experiments/../../tests/cluster.rs

/root/repo/target/debug/deps/cluster-309ce9a51f5969e2: crates/ahq-experiments/../../tests/cluster.rs

crates/ahq-experiments/../../tests/cluster.rs:
