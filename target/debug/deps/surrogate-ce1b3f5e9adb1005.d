/root/repo/target/debug/deps/surrogate-ce1b3f5e9adb1005.d: crates/ahq-experiments/../../tests/surrogate.rs Cargo.toml

/root/repo/target/debug/deps/libsurrogate-ce1b3f5e9adb1005.rmeta: crates/ahq-experiments/../../tests/surrogate.rs Cargo.toml

crates/ahq-experiments/../../tests/surrogate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
