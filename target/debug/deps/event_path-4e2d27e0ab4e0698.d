/root/repo/target/debug/deps/event_path-4e2d27e0ab4e0698.d: crates/ahq-sim/tests/event_path.rs

/root/repo/target/debug/deps/event_path-4e2d27e0ab4e0698: crates/ahq-sim/tests/event_path.rs

crates/ahq-sim/tests/event_path.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/ahq-sim
