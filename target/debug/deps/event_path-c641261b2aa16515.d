/root/repo/target/debug/deps/event_path-c641261b2aa16515.d: crates/ahq-sim/tests/event_path.rs Cargo.toml

/root/repo/target/debug/deps/libevent_path-c641261b2aa16515.rmeta: crates/ahq-sim/tests/event_path.rs Cargo.toml

crates/ahq-sim/tests/event_path.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/ahq-sim
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
