/root/repo/target/debug/deps/perf_smoke-981d758a70f85015.d: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json

/root/repo/target/debug/deps/perf_smoke-981d758a70f85015: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json

crates/bench/src/bin/perf_smoke.rs:
crates/bench/src/bin/../../BENCH_node.json:
