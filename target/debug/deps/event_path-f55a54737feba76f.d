/root/repo/target/debug/deps/event_path-f55a54737feba76f.d: crates/ahq-sim/tests/event_path.rs

/root/repo/target/debug/deps/event_path-f55a54737feba76f: crates/ahq-sim/tests/event_path.rs

crates/ahq-sim/tests/event_path.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/ahq-sim
