/root/repo/target/debug/deps/ahq_bench-c520dcc87f03fdf3.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libahq_bench-c520dcc87f03fdf3.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
