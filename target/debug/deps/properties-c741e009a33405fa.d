/root/repo/target/debug/deps/properties-c741e009a33405fa.d: crates/ahq-bayesopt/tests/properties.rs

/root/repo/target/debug/deps/properties-c741e009a33405fa: crates/ahq-bayesopt/tests/properties.rs

crates/ahq-bayesopt/tests/properties.rs:
