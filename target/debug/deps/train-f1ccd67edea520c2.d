/root/repo/target/debug/deps/train-f1ccd67edea520c2.d: crates/ahq-experiments/../../tests/train.rs

/root/repo/target/debug/deps/train-f1ccd67edea520c2: crates/ahq-experiments/../../tests/train.rs

crates/ahq-experiments/../../tests/train.rs:
