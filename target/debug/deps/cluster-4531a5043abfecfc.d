/root/repo/target/debug/deps/cluster-4531a5043abfecfc.d: crates/ahq-experiments/../../tests/cluster.rs

/root/repo/target/debug/deps/cluster-4531a5043abfecfc: crates/ahq-experiments/../../tests/cluster.rs

crates/ahq-experiments/../../tests/cluster.rs:
