/root/repo/target/debug/deps/ctrl-0c5abb8f5c5455c5.d: crates/bench/benches/ctrl.rs Cargo.toml

/root/repo/target/debug/deps/libctrl-0c5abb8f5c5455c5.rmeta: crates/bench/benches/ctrl.rs Cargo.toml

crates/bench/benches/ctrl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
