/root/repo/target/debug/deps/cluster-0f5bf505c028e2c3.d: crates/ahq-experiments/../../tests/cluster.rs Cargo.toml

/root/repo/target/debug/deps/libcluster-0f5bf505c028e2c3.rmeta: crates/ahq-experiments/../../tests/cluster.rs Cargo.toml

crates/ahq-experiments/../../tests/cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
