/root/repo/target/debug/deps/properties-0be3bac72e47743e.d: crates/ahq-sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-0be3bac72e47743e.rmeta: crates/ahq-sim/tests/properties.rs Cargo.toml

crates/ahq-sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
