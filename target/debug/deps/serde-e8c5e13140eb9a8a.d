/root/repo/target/debug/deps/serde-e8c5e13140eb9a8a.d: /tmp/ahq-verify/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-e8c5e13140eb9a8a.rmeta: /tmp/ahq-verify/stubs/serde/src/lib.rs

/tmp/ahq-verify/stubs/serde/src/lib.rs:
