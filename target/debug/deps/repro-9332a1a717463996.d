/root/repo/target/debug/deps/repro-9332a1a717463996.d: crates/ahq-experiments/src/bin/repro.rs

/root/repo/target/debug/deps/repro-9332a1a717463996: crates/ahq-experiments/src/bin/repro.rs

crates/ahq-experiments/src/bin/repro.rs:
