/root/repo/target/debug/deps/ahq_core-a09b93ec7836e22d.d: crates/ahq-core/src/lib.rs crates/ahq-core/src/entropy.rs crates/ahq-core/src/equivalence.rs crates/ahq-core/src/error.rs crates/ahq-core/src/json.rs crates/ahq-core/src/measurement.rs crates/ahq-core/src/seed.rs crates/ahq-core/src/series.rs crates/ahq-core/src/weighted.rs

/root/repo/target/debug/deps/libahq_core-a09b93ec7836e22d.rlib: crates/ahq-core/src/lib.rs crates/ahq-core/src/entropy.rs crates/ahq-core/src/equivalence.rs crates/ahq-core/src/error.rs crates/ahq-core/src/json.rs crates/ahq-core/src/measurement.rs crates/ahq-core/src/seed.rs crates/ahq-core/src/series.rs crates/ahq-core/src/weighted.rs

/root/repo/target/debug/deps/libahq_core-a09b93ec7836e22d.rmeta: crates/ahq-core/src/lib.rs crates/ahq-core/src/entropy.rs crates/ahq-core/src/equivalence.rs crates/ahq-core/src/error.rs crates/ahq-core/src/json.rs crates/ahq-core/src/measurement.rs crates/ahq-core/src/seed.rs crates/ahq-core/src/series.rs crates/ahq-core/src/weighted.rs

crates/ahq-core/src/lib.rs:
crates/ahq-core/src/entropy.rs:
crates/ahq-core/src/equivalence.rs:
crates/ahq-core/src/error.rs:
crates/ahq-core/src/json.rs:
crates/ahq-core/src/measurement.rs:
crates/ahq-core/src/seed.rs:
crates/ahq-core/src/series.rs:
crates/ahq-core/src/weighted.rs:
