/root/repo/target/debug/deps/event_order-84dc19a67654f14a.d: crates/ahq-sim/tests/event_order.rs Cargo.toml

/root/repo/target/debug/deps/libevent_order-84dc19a67654f14a.rmeta: crates/ahq-sim/tests/event_order.rs Cargo.toml

crates/ahq-sim/tests/event_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
