/root/repo/target/debug/deps/perf_smoke-040b6f3bc5f9fc73.d: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json Cargo.toml

/root/repo/target/debug/deps/libperf_smoke-040b6f3bc5f9fc73.rmeta: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json Cargo.toml

crates/bench/src/bin/perf_smoke.rs:
crates/bench/src/bin/../../BENCH_node.json:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
