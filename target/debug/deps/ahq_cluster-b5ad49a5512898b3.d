/root/repo/target/debug/deps/ahq_cluster-b5ad49a5512898b3.d: crates/ahq-cluster/src/lib.rs crates/ahq-cluster/src/churn.rs crates/ahq-cluster/src/cluster.rs crates/ahq-cluster/src/control.rs crates/ahq-cluster/src/fidelity.rs crates/ahq-cluster/src/placement.rs crates/ahq-cluster/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libahq_cluster-b5ad49a5512898b3.rmeta: crates/ahq-cluster/src/lib.rs crates/ahq-cluster/src/churn.rs crates/ahq-cluster/src/cluster.rs crates/ahq-cluster/src/control.rs crates/ahq-cluster/src/fidelity.rs crates/ahq-cluster/src/placement.rs crates/ahq-cluster/src/report.rs Cargo.toml

crates/ahq-cluster/src/lib.rs:
crates/ahq-cluster/src/churn.rs:
crates/ahq-cluster/src/cluster.rs:
crates/ahq-cluster/src/control.rs:
crates/ahq-cluster/src/fidelity.rs:
crates/ahq-cluster/src/placement.rs:
crates/ahq-cluster/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
