/root/repo/target/debug/deps/properties-7e04d3b6e0c73834.d: crates/ahq-sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-7e04d3b6e0c73834.rmeta: crates/ahq-sim/tests/properties.rs Cargo.toml

crates/ahq-sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
