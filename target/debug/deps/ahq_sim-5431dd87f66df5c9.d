/root/repo/target/debug/deps/ahq_sim-5431dd87f66df5c9.d: crates/ahq-sim/src/lib.rs crates/ahq-sim/src/app.rs crates/ahq-sim/src/bandwidth.rs crates/ahq-sim/src/cache.rs crates/ahq-sim/src/contention.rs crates/ahq-sim/src/error.rs crates/ahq-sim/src/jsonio.rs crates/ahq-sim/src/node.rs crates/ahq-sim/src/observation.rs crates/ahq-sim/src/partition.rs crates/ahq-sim/src/quantile.rs crates/ahq-sim/src/resources.rs crates/ahq-sim/src/spacetime.rs crates/ahq-sim/src/surrogate.rs crates/ahq-sim/src/time.rs crates/ahq-sim/src/trace.rs

/root/repo/target/debug/deps/libahq_sim-5431dd87f66df5c9.rlib: crates/ahq-sim/src/lib.rs crates/ahq-sim/src/app.rs crates/ahq-sim/src/bandwidth.rs crates/ahq-sim/src/cache.rs crates/ahq-sim/src/contention.rs crates/ahq-sim/src/error.rs crates/ahq-sim/src/jsonio.rs crates/ahq-sim/src/node.rs crates/ahq-sim/src/observation.rs crates/ahq-sim/src/partition.rs crates/ahq-sim/src/quantile.rs crates/ahq-sim/src/resources.rs crates/ahq-sim/src/spacetime.rs crates/ahq-sim/src/surrogate.rs crates/ahq-sim/src/time.rs crates/ahq-sim/src/trace.rs

/root/repo/target/debug/deps/libahq_sim-5431dd87f66df5c9.rmeta: crates/ahq-sim/src/lib.rs crates/ahq-sim/src/app.rs crates/ahq-sim/src/bandwidth.rs crates/ahq-sim/src/cache.rs crates/ahq-sim/src/contention.rs crates/ahq-sim/src/error.rs crates/ahq-sim/src/jsonio.rs crates/ahq-sim/src/node.rs crates/ahq-sim/src/observation.rs crates/ahq-sim/src/partition.rs crates/ahq-sim/src/quantile.rs crates/ahq-sim/src/resources.rs crates/ahq-sim/src/spacetime.rs crates/ahq-sim/src/surrogate.rs crates/ahq-sim/src/time.rs crates/ahq-sim/src/trace.rs

crates/ahq-sim/src/lib.rs:
crates/ahq-sim/src/app.rs:
crates/ahq-sim/src/bandwidth.rs:
crates/ahq-sim/src/cache.rs:
crates/ahq-sim/src/contention.rs:
crates/ahq-sim/src/error.rs:
crates/ahq-sim/src/jsonio.rs:
crates/ahq-sim/src/node.rs:
crates/ahq-sim/src/observation.rs:
crates/ahq-sim/src/partition.rs:
crates/ahq-sim/src/quantile.rs:
crates/ahq-sim/src/resources.rs:
crates/ahq-sim/src/spacetime.rs:
crates/ahq-sim/src/surrogate.rs:
crates/ahq-sim/src/time.rs:
crates/ahq-sim/src/trace.rs:
