/root/repo/target/debug/deps/perf_smoke-3e74019432f5c871.d: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json Cargo.toml

/root/repo/target/debug/deps/libperf_smoke-3e74019432f5c871.rmeta: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json Cargo.toml

crates/bench/src/bin/perf_smoke.rs:
crates/bench/src/bin/../../BENCH_node.json:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
