/root/repo/target/debug/deps/ahq_bench-285b78e473cbbd91.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ahq_bench-285b78e473cbbd91: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
