/root/repo/target/debug/deps/paper_shapes-0db9bf08d7c1622b.d: crates/ahq-experiments/../../tests/paper_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_shapes-0db9bf08d7c1622b.rmeta: crates/ahq-experiments/../../tests/paper_shapes.rs Cargo.toml

crates/ahq-experiments/../../tests/paper_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
