/root/repo/target/debug/deps/repro-bacd143888d3902d.d: crates/ahq-experiments/src/bin/repro.rs

/root/repo/target/debug/deps/repro-bacd143888d3902d: crates/ahq-experiments/src/bin/repro.rs

crates/ahq-experiments/src/bin/repro.rs:
