/root/repo/target/debug/deps/ahq_train-964e9ebdcce09774.d: crates/ahq-train/src/lib.rs crates/ahq-train/src/artifact.rs crates/ahq-train/src/evaluate.rs crates/ahq-train/src/genome.rs crates/ahq-train/src/portfolio.rs crates/ahq-train/src/trainer.rs

/root/repo/target/debug/deps/libahq_train-964e9ebdcce09774.rlib: crates/ahq-train/src/lib.rs crates/ahq-train/src/artifact.rs crates/ahq-train/src/evaluate.rs crates/ahq-train/src/genome.rs crates/ahq-train/src/portfolio.rs crates/ahq-train/src/trainer.rs

/root/repo/target/debug/deps/libahq_train-964e9ebdcce09774.rmeta: crates/ahq-train/src/lib.rs crates/ahq-train/src/artifact.rs crates/ahq-train/src/evaluate.rs crates/ahq-train/src/genome.rs crates/ahq-train/src/portfolio.rs crates/ahq-train/src/trainer.rs

crates/ahq-train/src/lib.rs:
crates/ahq-train/src/artifact.rs:
crates/ahq-train/src/evaluate.rs:
crates/ahq-train/src/genome.rs:
crates/ahq-train/src/portfolio.rs:
crates/ahq-train/src/trainer.rs:
