/root/repo/target/debug/deps/ahq_bench-d07db1cb9500f2ff.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libahq_bench-d07db1cb9500f2ff.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libahq_bench-d07db1cb9500f2ff.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
