/root/repo/target/debug/deps/criterion-e5805d60ee8e2394.d: /tmp/ahq-verify/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e5805d60ee8e2394.rlib: /tmp/ahq-verify/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e5805d60ee8e2394.rmeta: /tmp/ahq-verify/stubs/criterion/src/lib.rs

/tmp/ahq-verify/stubs/criterion/src/lib.rs:
