/root/repo/target/debug/deps/theory-bbc906442f8447d2.d: crates/bench/benches/theory.rs Cargo.toml

/root/repo/target/debug/deps/libtheory-bbc906442f8447d2.rmeta: crates/bench/benches/theory.rs Cargo.toml

crates/bench/benches/theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
