/root/repo/target/debug/deps/executor-4db875f63be82322.d: crates/ahq-experiments/../../tests/executor.rs

/root/repo/target/debug/deps/executor-4db875f63be82322: crates/ahq-experiments/../../tests/executor.rs

crates/ahq-experiments/../../tests/executor.rs:
