/root/repo/target/debug/deps/paper_shapes-ada0effaeeece7c7.d: crates/ahq-experiments/../../tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-ada0effaeeece7c7: crates/ahq-experiments/../../tests/paper_shapes.rs

crates/ahq-experiments/../../tests/paper_shapes.rs:
