/root/repo/target/debug/deps/ahq_bayesopt-8cc3f252da4ef5d9.d: crates/ahq-bayesopt/src/lib.rs crates/ahq-bayesopt/src/acquisition.rs crates/ahq-bayesopt/src/gp.rs crates/ahq-bayesopt/src/kernel.rs crates/ahq-bayesopt/src/linalg.rs crates/ahq-bayesopt/src/online.rs crates/ahq-bayesopt/src/optimizer.rs Cargo.toml

/root/repo/target/debug/deps/libahq_bayesopt-8cc3f252da4ef5d9.rmeta: crates/ahq-bayesopt/src/lib.rs crates/ahq-bayesopt/src/acquisition.rs crates/ahq-bayesopt/src/gp.rs crates/ahq-bayesopt/src/kernel.rs crates/ahq-bayesopt/src/linalg.rs crates/ahq-bayesopt/src/online.rs crates/ahq-bayesopt/src/optimizer.rs Cargo.toml

crates/ahq-bayesopt/src/lib.rs:
crates/ahq-bayesopt/src/acquisition.rs:
crates/ahq-bayesopt/src/gp.rs:
crates/ahq-bayesopt/src/kernel.rs:
crates/ahq-bayesopt/src/linalg.rs:
crates/ahq-bayesopt/src/online.rs:
crates/ahq-bayesopt/src/optimizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
