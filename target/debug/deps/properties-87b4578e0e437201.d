/root/repo/target/debug/deps/properties-87b4578e0e437201.d: crates/ahq-sim/tests/properties.rs

/root/repo/target/debug/deps/properties-87b4578e0e437201: crates/ahq-sim/tests/properties.rs

crates/ahq-sim/tests/properties.rs:
