/root/repo/target/debug/deps/bayesopt-0c8ad3acfe8f20c9.d: crates/bench/benches/bayesopt.rs Cargo.toml

/root/repo/target/debug/deps/libbayesopt-0c8ad3acfe8f20c9.rmeta: crates/bench/benches/bayesopt.rs Cargo.toml

crates/bench/benches/bayesopt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
