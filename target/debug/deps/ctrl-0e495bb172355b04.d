/root/repo/target/debug/deps/ctrl-0e495bb172355b04.d: crates/bench/benches/ctrl.rs

/root/repo/target/debug/deps/ctrl-0e495bb172355b04: crates/bench/benches/ctrl.rs

crates/bench/benches/ctrl.rs:
