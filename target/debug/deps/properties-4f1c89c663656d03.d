/root/repo/target/debug/deps/properties-4f1c89c663656d03.d: crates/ahq-sched/tests/properties.rs

/root/repo/target/debug/deps/properties-4f1c89c663656d03: crates/ahq-sched/tests/properties.rs

crates/ahq-sched/tests/properties.rs:
