/root/repo/target/debug/deps/cluster-e1e106cddf687984.d: crates/ahq-experiments/../../tests/cluster.rs

/root/repo/target/debug/deps/cluster-e1e106cddf687984: crates/ahq-experiments/../../tests/cluster.rs

crates/ahq-experiments/../../tests/cluster.rs:
