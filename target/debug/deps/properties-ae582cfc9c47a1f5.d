/root/repo/target/debug/deps/properties-ae582cfc9c47a1f5.d: crates/ahq-sched/tests/properties.rs

/root/repo/target/debug/deps/properties-ae582cfc9c47a1f5: crates/ahq-sched/tests/properties.rs

crates/ahq-sched/tests/properties.rs:
