/root/repo/target/debug/deps/rate_cache-eeb53e712e5f6d48.d: crates/ahq-sim/tests/rate_cache.rs

/root/repo/target/debug/deps/rate_cache-eeb53e712e5f6d48: crates/ahq-sim/tests/rate_cache.rs

crates/ahq-sim/tests/rate_cache.rs:
