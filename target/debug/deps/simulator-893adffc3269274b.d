/root/repo/target/debug/deps/simulator-893adffc3269274b.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-893adffc3269274b.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
