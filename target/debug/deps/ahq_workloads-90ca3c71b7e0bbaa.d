/root/repo/target/debug/deps/ahq_workloads-90ca3c71b7e0bbaa.d: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libahq_workloads-90ca3c71b7e0bbaa.rmeta: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs Cargo.toml

crates/ahq-workloads/src/lib.rs:
crates/ahq-workloads/src/load.rs:
crates/ahq-workloads/src/mixes.rs:
crates/ahq-workloads/src/profiles.rs:
crates/ahq-workloads/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
