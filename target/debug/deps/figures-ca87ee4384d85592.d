/root/repo/target/debug/deps/figures-ca87ee4384d85592.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-ca87ee4384d85592.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
