/root/repo/target/debug/deps/ahq_workloads-df7769e462c7699a.d: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs

/root/repo/target/debug/deps/libahq_workloads-df7769e462c7699a.rlib: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs

/root/repo/target/debug/deps/libahq_workloads-df7769e462c7699a.rmeta: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs

crates/ahq-workloads/src/lib.rs:
crates/ahq-workloads/src/load.rs:
crates/ahq-workloads/src/mixes.rs:
crates/ahq-workloads/src/profiles.rs:
crates/ahq-workloads/src/zipf.rs:
