/root/repo/target/debug/deps/cluster-e28d49fcd9af34d2.d: crates/bench/benches/cluster.rs Cargo.toml

/root/repo/target/debug/deps/libcluster-e28d49fcd9af34d2.rmeta: crates/bench/benches/cluster.rs Cargo.toml

crates/bench/benches/cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
