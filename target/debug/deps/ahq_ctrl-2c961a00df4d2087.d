/root/repo/target/debug/deps/ahq_ctrl-2c961a00df4d2087.d: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs Cargo.toml

/root/repo/target/debug/deps/libahq_ctrl-2c961a00df4d2087.rmeta: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs Cargo.toml

crates/ahq-ctrl/src/lib.rs:
crates/ahq-ctrl/src/config.rs:
crates/ahq-ctrl/src/global.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
