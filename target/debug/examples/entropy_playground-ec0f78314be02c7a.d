/root/repo/target/debug/examples/entropy_playground-ec0f78314be02c7a.d: crates/ahq-experiments/../../examples/entropy_playground.rs Cargo.toml

/root/repo/target/debug/examples/libentropy_playground-ec0f78314be02c7a.rmeta: crates/ahq-experiments/../../examples/entropy_playground.rs Cargo.toml

crates/ahq-experiments/../../examples/entropy_playground.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
