/root/repo/target/debug/examples/weighted_entropy-99c02e04aca42aec.d: crates/ahq-experiments/../../examples/weighted_entropy.rs

/root/repo/target/debug/examples/weighted_entropy-99c02e04aca42aec: crates/ahq-experiments/../../examples/weighted_entropy.rs

crates/ahq-experiments/../../examples/weighted_entropy.rs:
