/root/repo/target/debug/examples/entropy_playground-7dbfd9ec79675821.d: crates/ahq-experiments/../../examples/entropy_playground.rs Cargo.toml

/root/repo/target/debug/examples/libentropy_playground-7dbfd9ec79675821.rmeta: crates/ahq-experiments/../../examples/entropy_playground.rs Cargo.toml

crates/ahq-experiments/../../examples/entropy_playground.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
