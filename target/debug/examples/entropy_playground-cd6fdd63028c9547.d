/root/repo/target/debug/examples/entropy_playground-cd6fdd63028c9547.d: crates/ahq-experiments/../../examples/entropy_playground.rs

/root/repo/target/debug/examples/entropy_playground-cd6fdd63028c9547: crates/ahq-experiments/../../examples/entropy_playground.rs

crates/ahq-experiments/../../examples/entropy_playground.rs:
