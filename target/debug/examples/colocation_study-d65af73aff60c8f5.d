/root/repo/target/debug/examples/colocation_study-d65af73aff60c8f5.d: crates/ahq-experiments/../../examples/colocation_study.rs Cargo.toml

/root/repo/target/debug/examples/libcolocation_study-d65af73aff60c8f5.rmeta: crates/ahq-experiments/../../examples/colocation_study.rs Cargo.toml

crates/ahq-experiments/../../examples/colocation_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
