/root/repo/target/debug/examples/colocation_study-c662298937434d65.d: crates/ahq-experiments/../../examples/colocation_study.rs

/root/repo/target/debug/examples/colocation_study-c662298937434d65: crates/ahq-experiments/../../examples/colocation_study.rs

crates/ahq-experiments/../../examples/colocation_study.rs:
