/root/repo/target/debug/examples/quickstart-f1994478f9f8ee7a.d: crates/ahq-experiments/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-f1994478f9f8ee7a.rmeta: crates/ahq-experiments/../../examples/quickstart.rs Cargo.toml

crates/ahq-experiments/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
