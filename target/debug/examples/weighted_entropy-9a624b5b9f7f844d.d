/root/repo/target/debug/examples/weighted_entropy-9a624b5b9f7f844d.d: crates/ahq-experiments/../../examples/weighted_entropy.rs Cargo.toml

/root/repo/target/debug/examples/libweighted_entropy-9a624b5b9f7f844d.rmeta: crates/ahq-experiments/../../examples/weighted_entropy.rs Cargo.toml

crates/ahq-experiments/../../examples/weighted_entropy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
