/root/repo/target/debug/examples/entropy_playground-48e2aaa581915ed4.d: crates/ahq-experiments/../../examples/entropy_playground.rs

/root/repo/target/debug/examples/entropy_playground-48e2aaa581915ed4: crates/ahq-experiments/../../examples/entropy_playground.rs

crates/ahq-experiments/../../examples/entropy_playground.rs:
