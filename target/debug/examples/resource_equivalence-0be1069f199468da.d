/root/repo/target/debug/examples/resource_equivalence-0be1069f199468da.d: crates/ahq-experiments/../../examples/resource_equivalence.rs

/root/repo/target/debug/examples/resource_equivalence-0be1069f199468da: crates/ahq-experiments/../../examples/resource_equivalence.rs

crates/ahq-experiments/../../examples/resource_equivalence.rs:
