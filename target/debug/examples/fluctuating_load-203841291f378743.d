/root/repo/target/debug/examples/fluctuating_load-203841291f378743.d: crates/ahq-experiments/../../examples/fluctuating_load.rs Cargo.toml

/root/repo/target/debug/examples/libfluctuating_load-203841291f378743.rmeta: crates/ahq-experiments/../../examples/fluctuating_load.rs Cargo.toml

crates/ahq-experiments/../../examples/fluctuating_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
