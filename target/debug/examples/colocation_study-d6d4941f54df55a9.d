/root/repo/target/debug/examples/colocation_study-d6d4941f54df55a9.d: crates/ahq-experiments/../../examples/colocation_study.rs Cargo.toml

/root/repo/target/debug/examples/libcolocation_study-d6d4941f54df55a9.rmeta: crates/ahq-experiments/../../examples/colocation_study.rs Cargo.toml

crates/ahq-experiments/../../examples/colocation_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
