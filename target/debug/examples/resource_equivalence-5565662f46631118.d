/root/repo/target/debug/examples/resource_equivalence-5565662f46631118.d: crates/ahq-experiments/../../examples/resource_equivalence.rs

/root/repo/target/debug/examples/resource_equivalence-5565662f46631118: crates/ahq-experiments/../../examples/resource_equivalence.rs

crates/ahq-experiments/../../examples/resource_equivalence.rs:
