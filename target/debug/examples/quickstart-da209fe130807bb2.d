/root/repo/target/debug/examples/quickstart-da209fe130807bb2.d: crates/ahq-experiments/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-da209fe130807bb2: crates/ahq-experiments/../../examples/quickstart.rs

crates/ahq-experiments/../../examples/quickstart.rs:
