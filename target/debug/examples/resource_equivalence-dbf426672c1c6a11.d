/root/repo/target/debug/examples/resource_equivalence-dbf426672c1c6a11.d: crates/ahq-experiments/../../examples/resource_equivalence.rs Cargo.toml

/root/repo/target/debug/examples/libresource_equivalence-dbf426672c1c6a11.rmeta: crates/ahq-experiments/../../examples/resource_equivalence.rs Cargo.toml

crates/ahq-experiments/../../examples/resource_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
