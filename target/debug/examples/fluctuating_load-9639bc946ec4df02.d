/root/repo/target/debug/examples/fluctuating_load-9639bc946ec4df02.d: crates/ahq-experiments/../../examples/fluctuating_load.rs Cargo.toml

/root/repo/target/debug/examples/libfluctuating_load-9639bc946ec4df02.rmeta: crates/ahq-experiments/../../examples/fluctuating_load.rs Cargo.toml

crates/ahq-experiments/../../examples/fluctuating_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
