/root/repo/target/debug/examples/colocation_study-3d10eb4e4f39fd48.d: crates/ahq-experiments/../../examples/colocation_study.rs

/root/repo/target/debug/examples/colocation_study-3d10eb4e4f39fd48: crates/ahq-experiments/../../examples/colocation_study.rs

crates/ahq-experiments/../../examples/colocation_study.rs:
