/root/repo/target/debug/examples/weighted_entropy-23b2c1e937d47f4d.d: crates/ahq-experiments/../../examples/weighted_entropy.rs

/root/repo/target/debug/examples/weighted_entropy-23b2c1e937d47f4d: crates/ahq-experiments/../../examples/weighted_entropy.rs

crates/ahq-experiments/../../examples/weighted_entropy.rs:
