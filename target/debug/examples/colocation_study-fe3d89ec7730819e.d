/root/repo/target/debug/examples/colocation_study-fe3d89ec7730819e.d: crates/ahq-experiments/../../examples/colocation_study.rs

/root/repo/target/debug/examples/colocation_study-fe3d89ec7730819e: crates/ahq-experiments/../../examples/colocation_study.rs

crates/ahq-experiments/../../examples/colocation_study.rs:
