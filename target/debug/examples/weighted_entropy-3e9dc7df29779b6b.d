/root/repo/target/debug/examples/weighted_entropy-3e9dc7df29779b6b.d: crates/ahq-experiments/../../examples/weighted_entropy.rs Cargo.toml

/root/repo/target/debug/examples/libweighted_entropy-3e9dc7df29779b6b.rmeta: crates/ahq-experiments/../../examples/weighted_entropy.rs Cargo.toml

crates/ahq-experiments/../../examples/weighted_entropy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
