/root/repo/target/debug/examples/fluctuating_load-4241992673bc43df.d: crates/ahq-experiments/../../examples/fluctuating_load.rs

/root/repo/target/debug/examples/fluctuating_load-4241992673bc43df: crates/ahq-experiments/../../examples/fluctuating_load.rs

crates/ahq-experiments/../../examples/fluctuating_load.rs:
