/root/repo/target/debug/examples/weighted_entropy-2e0eacecc351dc44.d: crates/ahq-experiments/../../examples/weighted_entropy.rs

/root/repo/target/debug/examples/weighted_entropy-2e0eacecc351dc44: crates/ahq-experiments/../../examples/weighted_entropy.rs

crates/ahq-experiments/../../examples/weighted_entropy.rs:
