/root/repo/target/debug/examples/fluctuating_load-7619ae88ef236048.d: crates/ahq-experiments/../../examples/fluctuating_load.rs

/root/repo/target/debug/examples/fluctuating_load-7619ae88ef236048: crates/ahq-experiments/../../examples/fluctuating_load.rs

crates/ahq-experiments/../../examples/fluctuating_load.rs:
