/root/repo/target/debug/examples/quickstart-32162157dcc7ef59.d: crates/ahq-experiments/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-32162157dcc7ef59: crates/ahq-experiments/../../examples/quickstart.rs

crates/ahq-experiments/../../examples/quickstart.rs:
