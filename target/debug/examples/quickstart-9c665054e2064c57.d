/root/repo/target/debug/examples/quickstart-9c665054e2064c57.d: crates/ahq-experiments/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-9c665054e2064c57.rmeta: crates/ahq-experiments/../../examples/quickstart.rs Cargo.toml

crates/ahq-experiments/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
