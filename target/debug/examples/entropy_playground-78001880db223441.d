/root/repo/target/debug/examples/entropy_playground-78001880db223441.d: crates/ahq-experiments/../../examples/entropy_playground.rs

/root/repo/target/debug/examples/entropy_playground-78001880db223441: crates/ahq-experiments/../../examples/entropy_playground.rs

crates/ahq-experiments/../../examples/entropy_playground.rs:
