/root/repo/target/debug/examples/fluctuating_load-d53beaf1084e8d1d.d: crates/ahq-experiments/../../examples/fluctuating_load.rs

/root/repo/target/debug/examples/fluctuating_load-d53beaf1084e8d1d: crates/ahq-experiments/../../examples/fluctuating_load.rs

crates/ahq-experiments/../../examples/fluctuating_load.rs:
