/root/repo/target/debug/examples/quickstart-e29730340d3543be.d: crates/ahq-experiments/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e29730340d3543be: crates/ahq-experiments/../../examples/quickstart.rs

crates/ahq-experiments/../../examples/quickstart.rs:
