/root/repo/target/debug/examples/resource_equivalence-c39fd38bb6f77676.d: crates/ahq-experiments/../../examples/resource_equivalence.rs

/root/repo/target/debug/examples/resource_equivalence-c39fd38bb6f77676: crates/ahq-experiments/../../examples/resource_equivalence.rs

crates/ahq-experiments/../../examples/resource_equivalence.rs:
