/root/repo/target/debug/examples/resource_equivalence-70cda45cb908da51.d: crates/ahq-experiments/../../examples/resource_equivalence.rs Cargo.toml

/root/repo/target/debug/examples/libresource_equivalence-70cda45cb908da51.rmeta: crates/ahq-experiments/../../examples/resource_equivalence.rs Cargo.toml

crates/ahq-experiments/../../examples/resource_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
