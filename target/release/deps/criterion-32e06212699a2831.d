/root/repo/target/release/deps/criterion-32e06212699a2831.d: /tmp/ahq-verify/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-32e06212699a2831.rlib: /tmp/ahq-verify/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-32e06212699a2831.rmeta: /tmp/ahq-verify/stubs/criterion/src/lib.rs

/tmp/ahq-verify/stubs/criterion/src/lib.rs:
