/root/repo/target/release/deps/perf_smoke-34e44a7fb760eb9e.d: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json

/root/repo/target/release/deps/perf_smoke-34e44a7fb760eb9e: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json

crates/bench/src/bin/perf_smoke.rs:
crates/bench/src/bin/../../BENCH_node.json:
