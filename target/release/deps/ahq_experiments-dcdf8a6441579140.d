/root/repo/target/release/deps/ahq_experiments-dcdf8a6441579140.d: crates/ahq-experiments/src/lib.rs crates/ahq-experiments/src/ablations.rs crates/ahq-experiments/src/baselines.rs crates/ahq-experiments/src/cluster.rs crates/ahq-experiments/src/error.rs crates/ahq-experiments/src/exec.rs crates/ahq-experiments/src/fig1.rs crates/ahq-experiments/src/fig10.rs crates/ahq-experiments/src/fig11.rs crates/ahq-experiments/src/fig12.rs crates/ahq-experiments/src/fig13.rs crates/ahq-experiments/src/fig2.rs crates/ahq-experiments/src/fig3.rs crates/ahq-experiments/src/fig4.rs crates/ahq-experiments/src/fig56.rs crates/ahq-experiments/src/fig7.rs crates/ahq-experiments/src/fig8.rs crates/ahq-experiments/src/fig9.rs crates/ahq-experiments/src/gctrl.rs crates/ahq-experiments/src/headline.rs crates/ahq-experiments/src/membw.rs crates/ahq-experiments/src/report.rs crates/ahq-experiments/src/runs.rs crates/ahq-experiments/src/strategy.rs crates/ahq-experiments/src/table2.rs crates/ahq-experiments/src/table4.rs crates/ahq-experiments/src/train.rs

/root/repo/target/release/deps/libahq_experiments-dcdf8a6441579140.rlib: crates/ahq-experiments/src/lib.rs crates/ahq-experiments/src/ablations.rs crates/ahq-experiments/src/baselines.rs crates/ahq-experiments/src/cluster.rs crates/ahq-experiments/src/error.rs crates/ahq-experiments/src/exec.rs crates/ahq-experiments/src/fig1.rs crates/ahq-experiments/src/fig10.rs crates/ahq-experiments/src/fig11.rs crates/ahq-experiments/src/fig12.rs crates/ahq-experiments/src/fig13.rs crates/ahq-experiments/src/fig2.rs crates/ahq-experiments/src/fig3.rs crates/ahq-experiments/src/fig4.rs crates/ahq-experiments/src/fig56.rs crates/ahq-experiments/src/fig7.rs crates/ahq-experiments/src/fig8.rs crates/ahq-experiments/src/fig9.rs crates/ahq-experiments/src/gctrl.rs crates/ahq-experiments/src/headline.rs crates/ahq-experiments/src/membw.rs crates/ahq-experiments/src/report.rs crates/ahq-experiments/src/runs.rs crates/ahq-experiments/src/strategy.rs crates/ahq-experiments/src/table2.rs crates/ahq-experiments/src/table4.rs crates/ahq-experiments/src/train.rs

/root/repo/target/release/deps/libahq_experiments-dcdf8a6441579140.rmeta: crates/ahq-experiments/src/lib.rs crates/ahq-experiments/src/ablations.rs crates/ahq-experiments/src/baselines.rs crates/ahq-experiments/src/cluster.rs crates/ahq-experiments/src/error.rs crates/ahq-experiments/src/exec.rs crates/ahq-experiments/src/fig1.rs crates/ahq-experiments/src/fig10.rs crates/ahq-experiments/src/fig11.rs crates/ahq-experiments/src/fig12.rs crates/ahq-experiments/src/fig13.rs crates/ahq-experiments/src/fig2.rs crates/ahq-experiments/src/fig3.rs crates/ahq-experiments/src/fig4.rs crates/ahq-experiments/src/fig56.rs crates/ahq-experiments/src/fig7.rs crates/ahq-experiments/src/fig8.rs crates/ahq-experiments/src/fig9.rs crates/ahq-experiments/src/gctrl.rs crates/ahq-experiments/src/headline.rs crates/ahq-experiments/src/membw.rs crates/ahq-experiments/src/report.rs crates/ahq-experiments/src/runs.rs crates/ahq-experiments/src/strategy.rs crates/ahq-experiments/src/table2.rs crates/ahq-experiments/src/table4.rs crates/ahq-experiments/src/train.rs

crates/ahq-experiments/src/lib.rs:
crates/ahq-experiments/src/ablations.rs:
crates/ahq-experiments/src/baselines.rs:
crates/ahq-experiments/src/cluster.rs:
crates/ahq-experiments/src/error.rs:
crates/ahq-experiments/src/exec.rs:
crates/ahq-experiments/src/fig1.rs:
crates/ahq-experiments/src/fig10.rs:
crates/ahq-experiments/src/fig11.rs:
crates/ahq-experiments/src/fig12.rs:
crates/ahq-experiments/src/fig13.rs:
crates/ahq-experiments/src/fig2.rs:
crates/ahq-experiments/src/fig3.rs:
crates/ahq-experiments/src/fig4.rs:
crates/ahq-experiments/src/fig56.rs:
crates/ahq-experiments/src/fig7.rs:
crates/ahq-experiments/src/fig8.rs:
crates/ahq-experiments/src/fig9.rs:
crates/ahq-experiments/src/gctrl.rs:
crates/ahq-experiments/src/headline.rs:
crates/ahq-experiments/src/membw.rs:
crates/ahq-experiments/src/report.rs:
crates/ahq-experiments/src/runs.rs:
crates/ahq-experiments/src/strategy.rs:
crates/ahq-experiments/src/table2.rs:
crates/ahq-experiments/src/table4.rs:
crates/ahq-experiments/src/train.rs:
