/root/repo/target/release/deps/serde-d00f04408097b2ff.d: /tmp/ahq-verify/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-d00f04408097b2ff.rlib: /tmp/ahq-verify/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-d00f04408097b2ff.rmeta: /tmp/ahq-verify/stubs/serde/src/lib.rs

/tmp/ahq-verify/stubs/serde/src/lib.rs:
