/root/repo/target/release/deps/ahq_core-11729d461939d04a.d: crates/ahq-core/src/lib.rs crates/ahq-core/src/entropy.rs crates/ahq-core/src/equivalence.rs crates/ahq-core/src/error.rs crates/ahq-core/src/json.rs crates/ahq-core/src/measurement.rs crates/ahq-core/src/seed.rs crates/ahq-core/src/series.rs crates/ahq-core/src/weighted.rs

/root/repo/target/release/deps/libahq_core-11729d461939d04a.rlib: crates/ahq-core/src/lib.rs crates/ahq-core/src/entropy.rs crates/ahq-core/src/equivalence.rs crates/ahq-core/src/error.rs crates/ahq-core/src/json.rs crates/ahq-core/src/measurement.rs crates/ahq-core/src/seed.rs crates/ahq-core/src/series.rs crates/ahq-core/src/weighted.rs

/root/repo/target/release/deps/libahq_core-11729d461939d04a.rmeta: crates/ahq-core/src/lib.rs crates/ahq-core/src/entropy.rs crates/ahq-core/src/equivalence.rs crates/ahq-core/src/error.rs crates/ahq-core/src/json.rs crates/ahq-core/src/measurement.rs crates/ahq-core/src/seed.rs crates/ahq-core/src/series.rs crates/ahq-core/src/weighted.rs

crates/ahq-core/src/lib.rs:
crates/ahq-core/src/entropy.rs:
crates/ahq-core/src/equivalence.rs:
crates/ahq-core/src/error.rs:
crates/ahq-core/src/json.rs:
crates/ahq-core/src/measurement.rs:
crates/ahq-core/src/seed.rs:
crates/ahq-core/src/series.rs:
crates/ahq-core/src/weighted.rs:
