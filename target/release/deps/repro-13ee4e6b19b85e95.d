/root/repo/target/release/deps/repro-13ee4e6b19b85e95.d: crates/ahq-experiments/src/bin/repro.rs

/root/repo/target/release/deps/repro-13ee4e6b19b85e95: crates/ahq-experiments/src/bin/repro.rs

crates/ahq-experiments/src/bin/repro.rs:
