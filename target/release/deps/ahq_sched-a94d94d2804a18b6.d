/root/repo/target/release/deps/ahq_sched-a94d94d2804a18b6.d: crates/ahq-sched/src/lib.rs crates/ahq-sched/src/arq.rs crates/ahq-sched/src/clite.rs crates/ahq-sched/src/heracles.rs crates/ahq-sched/src/lcfirst.rs crates/ahq-sched/src/observe.rs crates/ahq-sched/src/parties.rs crates/ahq-sched/src/rollback.rs crates/ahq-sched/src/runner.rs crates/ahq-sched/src/unmanaged.rs

/root/repo/target/release/deps/libahq_sched-a94d94d2804a18b6.rlib: crates/ahq-sched/src/lib.rs crates/ahq-sched/src/arq.rs crates/ahq-sched/src/clite.rs crates/ahq-sched/src/heracles.rs crates/ahq-sched/src/lcfirst.rs crates/ahq-sched/src/observe.rs crates/ahq-sched/src/parties.rs crates/ahq-sched/src/rollback.rs crates/ahq-sched/src/runner.rs crates/ahq-sched/src/unmanaged.rs

/root/repo/target/release/deps/libahq_sched-a94d94d2804a18b6.rmeta: crates/ahq-sched/src/lib.rs crates/ahq-sched/src/arq.rs crates/ahq-sched/src/clite.rs crates/ahq-sched/src/heracles.rs crates/ahq-sched/src/lcfirst.rs crates/ahq-sched/src/observe.rs crates/ahq-sched/src/parties.rs crates/ahq-sched/src/rollback.rs crates/ahq-sched/src/runner.rs crates/ahq-sched/src/unmanaged.rs

crates/ahq-sched/src/lib.rs:
crates/ahq-sched/src/arq.rs:
crates/ahq-sched/src/clite.rs:
crates/ahq-sched/src/heracles.rs:
crates/ahq-sched/src/lcfirst.rs:
crates/ahq-sched/src/observe.rs:
crates/ahq-sched/src/parties.rs:
crates/ahq-sched/src/rollback.rs:
crates/ahq-sched/src/runner.rs:
crates/ahq-sched/src/unmanaged.rs:
