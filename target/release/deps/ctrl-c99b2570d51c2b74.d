/root/repo/target/release/deps/ctrl-c99b2570d51c2b74.d: crates/bench/benches/ctrl.rs

/root/repo/target/release/deps/ctrl-c99b2570d51c2b74: crates/bench/benches/ctrl.rs

crates/bench/benches/ctrl.rs:
