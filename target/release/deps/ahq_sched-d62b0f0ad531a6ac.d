/root/repo/target/release/deps/ahq_sched-d62b0f0ad531a6ac.d: crates/ahq-sched/src/lib.rs crates/ahq-sched/src/arq.rs crates/ahq-sched/src/clite.rs crates/ahq-sched/src/heracles.rs crates/ahq-sched/src/lcfirst.rs crates/ahq-sched/src/observe.rs crates/ahq-sched/src/parties.rs crates/ahq-sched/src/rollback.rs crates/ahq-sched/src/runner.rs crates/ahq-sched/src/unmanaged.rs

/root/repo/target/release/deps/libahq_sched-d62b0f0ad531a6ac.rlib: crates/ahq-sched/src/lib.rs crates/ahq-sched/src/arq.rs crates/ahq-sched/src/clite.rs crates/ahq-sched/src/heracles.rs crates/ahq-sched/src/lcfirst.rs crates/ahq-sched/src/observe.rs crates/ahq-sched/src/parties.rs crates/ahq-sched/src/rollback.rs crates/ahq-sched/src/runner.rs crates/ahq-sched/src/unmanaged.rs

/root/repo/target/release/deps/libahq_sched-d62b0f0ad531a6ac.rmeta: crates/ahq-sched/src/lib.rs crates/ahq-sched/src/arq.rs crates/ahq-sched/src/clite.rs crates/ahq-sched/src/heracles.rs crates/ahq-sched/src/lcfirst.rs crates/ahq-sched/src/observe.rs crates/ahq-sched/src/parties.rs crates/ahq-sched/src/rollback.rs crates/ahq-sched/src/runner.rs crates/ahq-sched/src/unmanaged.rs

crates/ahq-sched/src/lib.rs:
crates/ahq-sched/src/arq.rs:
crates/ahq-sched/src/clite.rs:
crates/ahq-sched/src/heracles.rs:
crates/ahq-sched/src/lcfirst.rs:
crates/ahq-sched/src/observe.rs:
crates/ahq-sched/src/parties.rs:
crates/ahq-sched/src/rollback.rs:
crates/ahq-sched/src/runner.rs:
crates/ahq-sched/src/unmanaged.rs:
