/root/repo/target/release/deps/repro-4277a27db1c05fb6.d: crates/ahq-experiments/src/bin/repro.rs

/root/repo/target/release/deps/repro-4277a27db1c05fb6: crates/ahq-experiments/src/bin/repro.rs

crates/ahq-experiments/src/bin/repro.rs:
