/root/repo/target/release/deps/ahq_sim-8feae0ca92cbd357.d: crates/ahq-sim/src/lib.rs crates/ahq-sim/src/app.rs crates/ahq-sim/src/bandwidth.rs crates/ahq-sim/src/cache.rs crates/ahq-sim/src/contention.rs crates/ahq-sim/src/error.rs crates/ahq-sim/src/jsonio.rs crates/ahq-sim/src/node.rs crates/ahq-sim/src/observation.rs crates/ahq-sim/src/partition.rs crates/ahq-sim/src/quantile.rs crates/ahq-sim/src/resources.rs crates/ahq-sim/src/spacetime.rs crates/ahq-sim/src/surrogate.rs crates/ahq-sim/src/time.rs crates/ahq-sim/src/trace.rs

/root/repo/target/release/deps/libahq_sim-8feae0ca92cbd357.rlib: crates/ahq-sim/src/lib.rs crates/ahq-sim/src/app.rs crates/ahq-sim/src/bandwidth.rs crates/ahq-sim/src/cache.rs crates/ahq-sim/src/contention.rs crates/ahq-sim/src/error.rs crates/ahq-sim/src/jsonio.rs crates/ahq-sim/src/node.rs crates/ahq-sim/src/observation.rs crates/ahq-sim/src/partition.rs crates/ahq-sim/src/quantile.rs crates/ahq-sim/src/resources.rs crates/ahq-sim/src/spacetime.rs crates/ahq-sim/src/surrogate.rs crates/ahq-sim/src/time.rs crates/ahq-sim/src/trace.rs

/root/repo/target/release/deps/libahq_sim-8feae0ca92cbd357.rmeta: crates/ahq-sim/src/lib.rs crates/ahq-sim/src/app.rs crates/ahq-sim/src/bandwidth.rs crates/ahq-sim/src/cache.rs crates/ahq-sim/src/contention.rs crates/ahq-sim/src/error.rs crates/ahq-sim/src/jsonio.rs crates/ahq-sim/src/node.rs crates/ahq-sim/src/observation.rs crates/ahq-sim/src/partition.rs crates/ahq-sim/src/quantile.rs crates/ahq-sim/src/resources.rs crates/ahq-sim/src/spacetime.rs crates/ahq-sim/src/surrogate.rs crates/ahq-sim/src/time.rs crates/ahq-sim/src/trace.rs

crates/ahq-sim/src/lib.rs:
crates/ahq-sim/src/app.rs:
crates/ahq-sim/src/bandwidth.rs:
crates/ahq-sim/src/cache.rs:
crates/ahq-sim/src/contention.rs:
crates/ahq-sim/src/error.rs:
crates/ahq-sim/src/jsonio.rs:
crates/ahq-sim/src/node.rs:
crates/ahq-sim/src/observation.rs:
crates/ahq-sim/src/partition.rs:
crates/ahq-sim/src/quantile.rs:
crates/ahq-sim/src/resources.rs:
crates/ahq-sim/src/spacetime.rs:
crates/ahq-sim/src/surrogate.rs:
crates/ahq-sim/src/time.rs:
crates/ahq-sim/src/trace.rs:
