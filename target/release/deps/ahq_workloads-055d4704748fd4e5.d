/root/repo/target/release/deps/ahq_workloads-055d4704748fd4e5.d: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs

/root/repo/target/release/deps/libahq_workloads-055d4704748fd4e5.rlib: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs

/root/repo/target/release/deps/libahq_workloads-055d4704748fd4e5.rmeta: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs

crates/ahq-workloads/src/lib.rs:
crates/ahq-workloads/src/load.rs:
crates/ahq-workloads/src/mixes.rs:
crates/ahq-workloads/src/profiles.rs:
crates/ahq-workloads/src/zipf.rs:
