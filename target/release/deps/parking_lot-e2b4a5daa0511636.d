/root/repo/target/release/deps/parking_lot-e2b4a5daa0511636.d: /tmp/ahq-verify/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e2b4a5daa0511636.rlib: /tmp/ahq-verify/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e2b4a5daa0511636.rmeta: /tmp/ahq-verify/stubs/parking_lot/src/lib.rs

/tmp/ahq-verify/stubs/parking_lot/src/lib.rs:
