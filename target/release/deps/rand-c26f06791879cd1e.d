/root/repo/target/release/deps/rand-c26f06791879cd1e.d: /tmp/ahq-verify/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-c26f06791879cd1e.rlib: /tmp/ahq-verify/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-c26f06791879cd1e.rmeta: /tmp/ahq-verify/stubs/rand/src/lib.rs

/tmp/ahq-verify/stubs/rand/src/lib.rs:
