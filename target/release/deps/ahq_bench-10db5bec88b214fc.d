/root/repo/target/release/deps/ahq_bench-10db5bec88b214fc.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libahq_bench-10db5bec88b214fc.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libahq_bench-10db5bec88b214fc.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
