/root/repo/target/release/deps/ahq_train-cecb4f3bbb9fb74b.d: crates/ahq-train/src/lib.rs crates/ahq-train/src/artifact.rs crates/ahq-train/src/evaluate.rs crates/ahq-train/src/genome.rs crates/ahq-train/src/portfolio.rs crates/ahq-train/src/trainer.rs

/root/repo/target/release/deps/libahq_train-cecb4f3bbb9fb74b.rlib: crates/ahq-train/src/lib.rs crates/ahq-train/src/artifact.rs crates/ahq-train/src/evaluate.rs crates/ahq-train/src/genome.rs crates/ahq-train/src/portfolio.rs crates/ahq-train/src/trainer.rs

/root/repo/target/release/deps/libahq_train-cecb4f3bbb9fb74b.rmeta: crates/ahq-train/src/lib.rs crates/ahq-train/src/artifact.rs crates/ahq-train/src/evaluate.rs crates/ahq-train/src/genome.rs crates/ahq-train/src/portfolio.rs crates/ahq-train/src/trainer.rs

crates/ahq-train/src/lib.rs:
crates/ahq-train/src/artifact.rs:
crates/ahq-train/src/evaluate.rs:
crates/ahq-train/src/genome.rs:
crates/ahq-train/src/portfolio.rs:
crates/ahq-train/src/trainer.rs:
