/root/repo/target/release/deps/perf_smoke-49449ad2b9975881.d: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json

/root/repo/target/release/deps/perf_smoke-49449ad2b9975881: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json

crates/bench/src/bin/perf_smoke.rs:
crates/bench/src/bin/../../BENCH_node.json:
