/root/repo/target/release/deps/ahq_bench-ece37fc39fbc5148.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libahq_bench-ece37fc39fbc5148.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libahq_bench-ece37fc39fbc5148.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
