/root/repo/target/release/deps/serde_json-305d76cf018e1c47.d: /tmp/ahq-verify/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-305d76cf018e1c47.rlib: /tmp/ahq-verify/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-305d76cf018e1c47.rmeta: /tmp/ahq-verify/stubs/serde_json/src/lib.rs

/tmp/ahq-verify/stubs/serde_json/src/lib.rs:
