/root/repo/target/release/deps/ahq_ctrl-948b6d157a3a6ab8.d: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs

/root/repo/target/release/deps/libahq_ctrl-948b6d157a3a6ab8.rlib: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs

/root/repo/target/release/deps/libahq_ctrl-948b6d157a3a6ab8.rmeta: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs

crates/ahq-ctrl/src/lib.rs:
crates/ahq-ctrl/src/config.rs:
crates/ahq-ctrl/src/global.rs:
