/root/repo/target/release/deps/ahq_ctrl-955636ff3cdece26.d: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs

/root/repo/target/release/deps/libahq_ctrl-955636ff3cdece26.rlib: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs

/root/repo/target/release/deps/libahq_ctrl-955636ff3cdece26.rmeta: crates/ahq-ctrl/src/lib.rs crates/ahq-ctrl/src/config.rs crates/ahq-ctrl/src/global.rs

crates/ahq-ctrl/src/lib.rs:
crates/ahq-ctrl/src/config.rs:
crates/ahq-ctrl/src/global.rs:
