/root/repo/target/release/deps/ahq_workloads-da6824750334fee8.d: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs

/root/repo/target/release/deps/libahq_workloads-da6824750334fee8.rlib: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs

/root/repo/target/release/deps/libahq_workloads-da6824750334fee8.rmeta: crates/ahq-workloads/src/lib.rs crates/ahq-workloads/src/load.rs crates/ahq-workloads/src/mixes.rs crates/ahq-workloads/src/profiles.rs crates/ahq-workloads/src/zipf.rs

crates/ahq-workloads/src/lib.rs:
crates/ahq-workloads/src/load.rs:
crates/ahq-workloads/src/mixes.rs:
crates/ahq-workloads/src/profiles.rs:
crates/ahq-workloads/src/zipf.rs:
