/root/repo/target/release/deps/ahq_bayesopt-e92ebffe3aa99550.d: crates/ahq-bayesopt/src/lib.rs crates/ahq-bayesopt/src/acquisition.rs crates/ahq-bayesopt/src/gp.rs crates/ahq-bayesopt/src/kernel.rs crates/ahq-bayesopt/src/linalg.rs crates/ahq-bayesopt/src/online.rs crates/ahq-bayesopt/src/optimizer.rs

/root/repo/target/release/deps/libahq_bayesopt-e92ebffe3aa99550.rlib: crates/ahq-bayesopt/src/lib.rs crates/ahq-bayesopt/src/acquisition.rs crates/ahq-bayesopt/src/gp.rs crates/ahq-bayesopt/src/kernel.rs crates/ahq-bayesopt/src/linalg.rs crates/ahq-bayesopt/src/online.rs crates/ahq-bayesopt/src/optimizer.rs

/root/repo/target/release/deps/libahq_bayesopt-e92ebffe3aa99550.rmeta: crates/ahq-bayesopt/src/lib.rs crates/ahq-bayesopt/src/acquisition.rs crates/ahq-bayesopt/src/gp.rs crates/ahq-bayesopt/src/kernel.rs crates/ahq-bayesopt/src/linalg.rs crates/ahq-bayesopt/src/online.rs crates/ahq-bayesopt/src/optimizer.rs

crates/ahq-bayesopt/src/lib.rs:
crates/ahq-bayesopt/src/acquisition.rs:
crates/ahq-bayesopt/src/gp.rs:
crates/ahq-bayesopt/src/kernel.rs:
crates/ahq-bayesopt/src/linalg.rs:
crates/ahq-bayesopt/src/online.rs:
crates/ahq-bayesopt/src/optimizer.rs:
