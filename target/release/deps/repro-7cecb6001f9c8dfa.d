/root/repo/target/release/deps/repro-7cecb6001f9c8dfa.d: crates/ahq-experiments/src/bin/repro.rs

/root/repo/target/release/deps/repro-7cecb6001f9c8dfa: crates/ahq-experiments/src/bin/repro.rs

crates/ahq-experiments/src/bin/repro.rs:
