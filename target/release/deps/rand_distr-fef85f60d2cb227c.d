/root/repo/target/release/deps/rand_distr-fef85f60d2cb227c.d: /tmp/ahq-verify/stubs/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-fef85f60d2cb227c.rlib: /tmp/ahq-verify/stubs/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-fef85f60d2cb227c.rmeta: /tmp/ahq-verify/stubs/rand_distr/src/lib.rs

/tmp/ahq-verify/stubs/rand_distr/src/lib.rs:
