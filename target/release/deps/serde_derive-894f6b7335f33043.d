/root/repo/target/release/deps/serde_derive-894f6b7335f33043.d: /tmp/ahq-verify/stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-894f6b7335f33043.so: /tmp/ahq-verify/stubs/serde_derive/src/lib.rs

/tmp/ahq-verify/stubs/serde_derive/src/lib.rs:
