/root/repo/target/release/deps/ahq_bench-9312f1a00e308d4d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libahq_bench-9312f1a00e308d4d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libahq_bench-9312f1a00e308d4d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
