/root/repo/target/release/deps/perf_smoke-ebadf054b69f6912.d: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json

/root/repo/target/release/deps/perf_smoke-ebadf054b69f6912: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json

crates/bench/src/bin/perf_smoke.rs:
crates/bench/src/bin/../../BENCH_node.json:
