/root/repo/target/release/deps/perf_smoke-23e749c0cbfde508.d: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json

/root/repo/target/release/deps/perf_smoke-23e749c0cbfde508: crates/bench/src/bin/perf_smoke.rs crates/bench/src/bin/../../BENCH_node.json

crates/bench/src/bin/perf_smoke.rs:
crates/bench/src/bin/../../BENCH_node.json:
