/root/repo/target/release/deps/ahq_cluster-120c0142361e27fb.d: crates/ahq-cluster/src/lib.rs crates/ahq-cluster/src/churn.rs crates/ahq-cluster/src/cluster.rs crates/ahq-cluster/src/control.rs crates/ahq-cluster/src/fidelity.rs crates/ahq-cluster/src/placement.rs crates/ahq-cluster/src/report.rs

/root/repo/target/release/deps/libahq_cluster-120c0142361e27fb.rlib: crates/ahq-cluster/src/lib.rs crates/ahq-cluster/src/churn.rs crates/ahq-cluster/src/cluster.rs crates/ahq-cluster/src/control.rs crates/ahq-cluster/src/fidelity.rs crates/ahq-cluster/src/placement.rs crates/ahq-cluster/src/report.rs

/root/repo/target/release/deps/libahq_cluster-120c0142361e27fb.rmeta: crates/ahq-cluster/src/lib.rs crates/ahq-cluster/src/churn.rs crates/ahq-cluster/src/cluster.rs crates/ahq-cluster/src/control.rs crates/ahq-cluster/src/fidelity.rs crates/ahq-cluster/src/placement.rs crates/ahq-cluster/src/report.rs

crates/ahq-cluster/src/lib.rs:
crates/ahq-cluster/src/churn.rs:
crates/ahq-cluster/src/cluster.rs:
crates/ahq-cluster/src/control.rs:
crates/ahq-cluster/src/fidelity.rs:
crates/ahq-cluster/src/placement.rs:
crates/ahq-cluster/src/report.rs:
