/root/repo/target/release/deps/ahq_cluster-2470abf59c0f104f.d: crates/ahq-cluster/src/lib.rs crates/ahq-cluster/src/churn.rs crates/ahq-cluster/src/cluster.rs crates/ahq-cluster/src/control.rs crates/ahq-cluster/src/fidelity.rs crates/ahq-cluster/src/placement.rs crates/ahq-cluster/src/report.rs

/root/repo/target/release/deps/libahq_cluster-2470abf59c0f104f.rlib: crates/ahq-cluster/src/lib.rs crates/ahq-cluster/src/churn.rs crates/ahq-cluster/src/cluster.rs crates/ahq-cluster/src/control.rs crates/ahq-cluster/src/fidelity.rs crates/ahq-cluster/src/placement.rs crates/ahq-cluster/src/report.rs

/root/repo/target/release/deps/libahq_cluster-2470abf59c0f104f.rmeta: crates/ahq-cluster/src/lib.rs crates/ahq-cluster/src/churn.rs crates/ahq-cluster/src/cluster.rs crates/ahq-cluster/src/control.rs crates/ahq-cluster/src/fidelity.rs crates/ahq-cluster/src/placement.rs crates/ahq-cluster/src/report.rs

crates/ahq-cluster/src/lib.rs:
crates/ahq-cluster/src/churn.rs:
crates/ahq-cluster/src/cluster.rs:
crates/ahq-cluster/src/control.rs:
crates/ahq-cluster/src/fidelity.rs:
crates/ahq-cluster/src/placement.rs:
crates/ahq-cluster/src/report.rs:
