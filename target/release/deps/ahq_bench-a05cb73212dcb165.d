/root/repo/target/release/deps/ahq_bench-a05cb73212dcb165.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libahq_bench-a05cb73212dcb165.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libahq_bench-a05cb73212dcb165.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
