//! Fluctuating load (the Fig. 13 scenario): Xapian's load follows a
//! diurnal-style trace while ARQ and PARTIES adapt, printing a live
//! timeline of load, entropy and ARQ's region sizes.
//!
//! ```text
//! cargo run --release --example fluctuating_load
//! ```

use ahq_core::EntropyModel;
use ahq_sched::{run_with_hook, Arq, Parties, Scheduler};
use ahq_sim::{MachineConfig, NodeSim};
use ahq_workloads::load::fig13_xapian_trace;
use ahq_workloads::mixes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = fig13_xapian_trace();
    let model = EntropyModel::default();
    let machine = MachineConfig::paper_xeon();
    let windows = 500; // 250 s at the paper's 500 ms interval

    let mut outcomes = Vec::new();
    for (label, mut sched) in [
        ("parties", Box::new(Parties::new()) as Box<dyn Scheduler>),
        ("arq", Box::new(Arq::new())),
    ] {
        let mix = mixes::stream_mix();
        let mut sim = NodeSim::new(machine, mix.apps.clone(), 42)?;
        sim.set_load("moses", 0.2)?;
        sim.set_load("img-dnn", 0.2)?;
        sim.set_load("xapian", trace.load_at(0.0))?;
        let trace_for_hook = trace.clone();
        let result = run_with_hook(&mut sim, sched.as_mut(), windows, &model, move |sim, w| {
            let _ = sim.set_load("xapian", trace_for_hook.load_at(w as f64 * 0.5));
        });
        outcomes.push((label, result));
    }

    println!("t(s)  load | parties E_S | arq E_S | arq xapian iso (c/w) | arq shared (c/w)");
    let arq = &outcomes[1].1;
    let parties = &outcomes[0].1;
    for w in (0..windows).step_by(20) {
        let t = w as f64 * 0.5;
        let p = &arq.partitions[w];
        let xa = p.isolated(0.into());
        println!(
            "{:>5.0}  {:>4.0}% | {:>11.3} | {:>7.3} | {:>10}/{:<9} | {:>7}/{}",
            t,
            trace.load_at(t) * 100.0,
            parties.entropy[w].system,
            arq.entropy[w].system,
            xa.cores,
            xa.ways,
            p.shared_cores(&machine),
            p.shared_ways(&machine),
        );
    }
    for (label, result) in &outcomes {
        println!(
            "\n{label}: {} violations, {} adjustments over {:.0} s (paper: ARQ 59 vs PARTIES 105)",
            result.violations,
            result.adjustments,
            windows as f64 * 0.5
        );
    }
    Ok(())
}
