//! Entropy playground: explore the `E_S` theory itself — the three
//! required properties, the effect of the relative importance `RI`, and
//! the Fig. 4 space-time model.
//!
//! ```text
//! cargo run --release --example entropy_playground
//! ```

use ahq_core::{BeMeasurement, EntropyModel, LcMeasurement, QosElasticity, RelativeImportance};
use ahq_sim::spacetime::{evaluate, figure4_patterns, Discipline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A fixed scenario: one comfortable app, one borderline, one violating.
    let lc = vec![
        LcMeasurement::new("comfortable", 1.0, 1.5, 4.0)?,
        LcMeasurement::new("borderline", 2.0, 3.9, 4.0)?,
        LcMeasurement::new("violating", 1.0, 8.0, 4.0)?,
    ];
    let be = vec![
        BeMeasurement::new("batch-a", 2.0, 1.5)?,
        BeMeasurement::new("batch-b", 1.0, 0.4)?,
    ];

    println!("--- E_S as a function of the relative importance RI ---");
    for ri in [0.0, 0.2, 0.5, 0.8, 1.0] {
        let model = EntropyModel::new(RelativeImportance::new(ri)?);
        let r = model.evaluate(&lc, &be);
        println!(
            "RI = {ri:.1}:  E_LC = {:.3}  E_BE = {:.3}  E_S = {:.3}",
            r.lc, r.be, r.system
        );
    }

    println!("\n--- Property ②: degrading any observation raises E_S ---");
    let model = EntropyModel::default();
    let base = model.evaluate(&lc, &be).system;
    let mut worse = lc.clone();
    worse[1] = LcMeasurement::new("borderline", 2.0, 5.5, 4.0)?;
    let degraded = model.evaluate(&worse, &be).system;
    println!("base E_S = {base:.3}; with borderline app degraded: {degraded:.3}");
    assert!(degraded > base);

    println!("\n--- QoS elasticity and the yield ---");
    for pct in [0.0, 0.05, 0.10] {
        let model = EntropyModel::default().with_elasticity(QosElasticity::new(pct)?);
        let r = model.evaluate(&lc, &be);
        println!(
            "elasticity {:>3.0} %: yield = {:.0} %",
            pct * 100.0,
            r.yield_fraction * 100.0
        );
    }

    println!("\n--- Fig. 4 space-time model ---");
    let patterns = figure4_patterns();
    for (label, discipline) in [
        ("unmanaged       ", Discipline::NoManagement),
        ("isolated to LC1 ", Discipline::IsolatedTo(0)),
        ("shared, LC prio ", Discipline::SharedLcPriority),
    ] {
        let out = evaluate(&patterns, discipline);
        println!(
            "{label}: {:>2} crosses, {:>2} ticks, {} triangles, utilization {:.0} %",
            out.crosses,
            out.ticks,
            out.triangles,
            out.utilization * 100.0
        );
    }
    Ok(())
}
