//! Colocation study: compare all five scheduling strategies on one of the
//! paper's mixes at a chosen load.
//!
//! ```text
//! cargo run --release --example colocation_study -- [mix] [xapian-load]
//!   mix:   fluidanimate | stream | sphinx | large   (default: stream)
//!   load:  primary LC app load fraction 0.0-1.0     (default: 0.7)
//! ```

use ahq_core::EntropyModel;
use ahq_experiments::StrategyKind;
use ahq_sched::run;
use ahq_sim::{MachineConfig, NodeSim};
use ahq_workloads::mixes::{self, Mix};

fn pick_mix(name: &str) -> Mix {
    match name {
        "fluidanimate" => mixes::fluidanimate_mix(),
        "stream" => mixes::stream_mix(),
        "sphinx" => mixes::sphinx_mix(),
        "large" => mixes::large_mix(),
        other => {
            eprintln!("unknown mix {other:?}, using stream");
            mixes::stream_mix()
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mix = pick_mix(args.first().map(String::as_str).unwrap_or("stream"));
    let load: f64 = args
        .get(1)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.7)
        .clamp(0.0, 1.0);

    let lc_names = mix.lc_names();
    let primary = lc_names[0].to_owned();
    println!(
        "mix {:?}: {} at {:.0} % load, other LC apps at 20 %\n",
        mix.name,
        primary,
        load * 100.0
    );
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>6} {:>10} {:>6} {:>5}",
        "strategy", "E_LC", "E_BE", "E_S", "yield", "p95 (ms)", "adj", "viol"
    );

    let model = EntropyModel::default();
    for strategy in StrategyKind::extended() {
        let mut sim = NodeSim::new(MachineConfig::paper_xeon(), mix.apps.clone(), 42)?;
        sim.set_load(&primary, load)?;
        for name in lc_names.iter().skip(1) {
            sim.set_load(name, 0.2)?;
        }
        let mut sched = strategy.build();
        let result = run(&mut sim, sched.as_mut(), 200, &model);
        println!(
            "{:<10} {:>6.3} {:>6.3} {:>6.3} {:>6.2} {:>10.2} {:>6} {:>5}",
            strategy.name(),
            result.steady_lc_entropy(60),
            result.steady_be_entropy(60),
            result.steady_entropy(60),
            result.steady_yield(60),
            result.steady_p95(&primary, 60).unwrap_or(f64::NAN),
            result.adjustments,
            result.violations,
        );
    }
    Ok(())
}
