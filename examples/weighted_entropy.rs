//! Weighted entropy: the extension the paper sketches in §II-B — "the
//! `E_S` model can be extended to involve different RI factors among the
//! same type of applications" — in action.
//!
//! A revenue-critical service and a internal dashboard share a node. The
//! uniform model treats their violations identically; the weighted model
//! lets the operator encode that a dashboard hiccup is a shrug while a
//! checkout hiccup is an incident.
//!
//! ```text
//! cargo run --release --example weighted_entropy
//! ```

use ahq_core::{BeMeasurement, EntropyModel, LcMeasurement, Weighted, WeightedEntropyModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two scenarios with symmetric violations:
    //   X: the checkout service violates, the dashboard is fine.
    //   Y: the dashboard violates, the checkout service is fine.
    let checkout_bad = LcMeasurement::new("checkout", 1.0, 6.0, 2.0)?;
    let checkout_ok = LcMeasurement::new("checkout", 1.0, 1.3, 2.0)?;
    let dashboard_bad = LcMeasurement::new("dashboard", 5.0, 30.0, 10.0)?;
    let dashboard_ok = LcMeasurement::new("dashboard", 5.0, 6.5, 10.0)?;
    let be = vec![BeMeasurement::new("nightly-etl", 1.5, 1.0)?];

    let uniform = EntropyModel::default();
    let x_uniform = uniform.evaluate(&[checkout_bad.clone(), dashboard_ok.clone()], &be);
    let y_uniform = uniform.evaluate(&[checkout_ok.clone(), dashboard_bad.clone()], &be);
    println!("uniform model (the paper's default):");
    println!(
        "  scenario X (checkout down):  E_S = {:.3}",
        x_uniform.system
    );
    println!(
        "  scenario Y (dashboard down): E_S = {:.3}",
        y_uniform.system
    );
    println!("  -> nearly indistinguishable; both are 'one LC app violating'.\n");

    // The weighted model: checkout is 9x more important than the dashboard.
    let weighted = WeightedEntropyModel::new(uniform);
    let be_w: Vec<Weighted<BeMeasurement>> =
        be.iter().cloned().map(|m| Weighted::new(m, 1.0)).collect();
    let x_weighted = weighted.evaluate(
        &[
            Weighted::new(checkout_bad, 9.0),
            Weighted::new(dashboard_ok, 1.0),
        ],
        &be_w,
    )?;
    let y_weighted = weighted.evaluate(
        &[
            Weighted::new(checkout_ok, 9.0),
            Weighted::new(dashboard_bad, 1.0),
        ],
        &be_w,
    )?;
    println!("weighted model (checkout weight 9, dashboard weight 1):");
    println!(
        "  scenario X (checkout down):  E_S = {:.3}",
        x_weighted.system
    );
    println!(
        "  scenario Y (dashboard down): E_S = {:.3}",
        y_weighted.system
    );
    println!(
        "  -> the checkout outage is now {:.1}x worse, matching its business weight.",
        x_weighted.system / y_weighted.system
    );
    assert!(x_weighted.system > 3.0 * y_weighted.system);
    Ok(())
}
