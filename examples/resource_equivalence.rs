//! Resource equivalence (the Fig. 3 analysis): how many cores does ARQ
//! save relative to the Unmanaged strategy at equal system entropy?
//!
//! ```text
//! cargo run --release --example resource_equivalence [-- target-entropy]
//! ```

use ahq_core::{resource_equivalence, EntropyModel, EntropySeries};
use ahq_experiments::StrategyKind;
use ahq_sched::run;
use ahq_sim::{MachineConfig, NodeSim};
use ahq_workloads::mixes;

fn entropy_at(cores: u32, strategy: StrategyKind) -> f64 {
    let mix = mixes::fluidanimate_mix();
    let machine = MachineConfig::paper_xeon().with_budget(cores, 20);
    let mut sim =
        NodeSim::with_reference(machine, MachineConfig::paper_xeon(), mix.apps.clone(), 42)
            .expect("valid mix");
    for app in ["xapian", "moses", "img-dnn"] {
        sim.set_load(app, 0.2).expect("LC app");
    }
    let mut sched = strategy.build();
    let result = run(&mut sim, sched.as_mut(), 160, &EntropyModel::default());
    result.steady_entropy(60)
}

fn main() {
    let target: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);

    println!("sweeping the core budget 4..=10 for Unmanaged and ARQ...\n");
    println!("{:>6} {:>10} {:>8}", "cores", "unmanaged", "arq");
    let mut unmanaged_pts = Vec::new();
    let mut arq_pts = Vec::new();
    for cores in 4..=10u32 {
        let eu = entropy_at(cores, StrategyKind::Unmanaged);
        let ea = entropy_at(cores, StrategyKind::Arq);
        println!("{cores:>6} {eu:>10.3} {ea:>8.3}");
        unmanaged_pts.push((cores as f64, eu));
        arq_pts.push((cores as f64, ea));
    }

    let unmanaged = EntropySeries::from_points("unmanaged", unmanaged_pts);
    let arq = EntropySeries::from_points("arq", arq_pts);
    match resource_equivalence(&unmanaged, &arq, target) {
        Some(eq) => println!(
            "\nto reach E_S = {target}: unmanaged needs {:.2} cores, ARQ needs {:.2} — \
             resource equivalence {:.2} cores (paper: 2.0 cores at E_S = 0.25)",
            eq.baseline_resource, eq.candidate_resource, eq.saved
        ),
        None => println!(
            "\nE_S = {target} is not reachable within 4..=10 cores for at least one strategy; \
             try a larger target"
        ),
    }
}
