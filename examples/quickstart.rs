//! Quickstart: compute the system entropy of a small collocation and let
//! ARQ schedule it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ahq_core::{BeMeasurement, EntropyModel, LcMeasurement, RelativeImportance};
use ahq_sched::{run, Arq};
use ahq_sim::{MachineConfig, NodeSim};
use ahq_workloads::{mixes, profiles};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The theory: score a hand-made measurement set ---------------
    // Table II of the paper, 7-core row.
    let lc = vec![
        LcMeasurement::new("xapian", 2.77, 7.13, 4.22)?,
        LcMeasurement::new("moses", 2.80, 6.78, 10.53)?,
        LcMeasurement::new("img-dnn", 1.41, 5.65, 3.98)?,
    ];
    let be = vec![BeMeasurement::new("fluidanimate", 2.8, 2.55)?];
    let model = EntropyModel::new(RelativeImportance::PAPER);
    let report = model.evaluate(&lc, &be);
    println!("hand-made measurements:");
    println!(
        "  E_LC = {:.3}, E_BE = {:.3}, E_S = {:.3}, yield = {:.0}%",
        report.lc,
        report.be,
        report.system,
        report.yield_fraction * 100.0
    );
    for app in &report.lc_apps {
        println!(
            "  {:<8} A={:.2} R={:.2} ReT={:.2} Q={:.2} {}",
            app.name,
            app.tolerance,
            app.interference,
            app.remaining_tolerance,
            app.intolerable,
            if app.satisfied { "ok" } else { "VIOLATING" }
        );
    }

    // --- 2. The simulator: run the paper's workload under ARQ -----------
    let mix = mixes::fluidanimate_mix();
    let mut sim = NodeSim::new(MachineConfig::paper_xeon(), mix.apps.clone(), 42)?;
    sim.set_load("xapian", 0.5)?;
    sim.set_load("moses", 0.2)?;
    sim.set_load("img-dnn", 0.2)?;

    let mut arq = Arq::new();
    let result = run(&mut sim, &mut arq, 60, &model);
    println!("\nARQ on {} (30 s simulated):", mix.name);
    println!(
        "  steady E_LC = {:.3}, E_BE = {:.3}, E_S = {:.3}, yield = {:.0}%",
        result.steady_lc_entropy(20),
        result.steady_be_entropy(20),
        result.steady_entropy(20),
        result.steady_yield(20) * 100.0
    );
    println!(
        "  xapian p95 = {:.2} ms (target {} ms), fluidanimate IPC = {:.2} (solo {})",
        result.steady_p95("xapian", 20).unwrap_or(f64::NAN),
        profiles::xapian().qos_threshold_ms().unwrap(),
        result.steady_ipc("fluidanimate", 20).unwrap_or(f64::NAN),
        profiles::fluidanimate().ipc_solo().unwrap(),
    );
    println!("  partition adjustments: {}", result.adjustments);
    Ok(())
}
